//! `lint.toml` — profiles and the cache-key rule's structural declarations.
//!
//! A *profile* maps a set of workspace path prefixes to the per-file rules
//! enforced there. A file picks up the union of every profile whose prefix
//! matches, so `crates/engine/src/planner.rs` gets the baseline rules from
//! the `default` profile *plus* the determinism rules from
//! `answer-affecting`. The cache-key rule is declared separately because it
//! is cross-file: it names type definitions and the regions that must
//! mention them (see [`crate::structural`]).

use crate::rules::RuleId;
use crate::toml::{self, Table, Value};

/// One profile: path prefixes → rule set.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Profile name (the `[profiles.<name>]` key).
    pub name: String,
    /// Workspace-relative path prefixes (`/`-separated).
    pub paths: Vec<String>,
    /// Rules enforced on matching files.
    pub rules: Vec<RuleId>,
}

/// `[[rules.cache-key.embed]]` — `container`'s definition in `file` must
/// textually embed the type `member`. Chained declarations prove that a
/// config type is carried into the cache key wholesale, so every field it
/// ever grows is automatically part of the key's derived `Eq`/`Hash`.
#[derive(Clone, Debug)]
pub struct EmbedLink {
    /// File holding `container`'s definition.
    pub file: String,
    /// The struct or enum whose definition is inspected.
    pub container: String,
    /// The type name that must appear inside that definition.
    pub member: String,
}

/// `[[rules.cache-key.consult]]` — every field of struct `type` (defined in
/// `defined_in`) must be consulted (appear as an identifier) in at least one
/// of `consulted_in`, outside the struct's own definition, its `Default`
/// impl, and test code. Catches a budget knob that is added, defaulted, and
/// then silently ignored by the planner.
#[derive(Clone, Debug)]
pub struct ConsultCheck {
    /// The struct whose fields are extracted.
    pub type_name: String,
    /// File holding the struct definition.
    pub defined_in: String,
    /// Files that collectively must consult every field.
    pub consulted_in: Vec<String>,
}

/// `[[rules.cache-key.variants]]` — every variant of enum `type` (defined
/// in `defined_in`) must be matched as `Type::Variant` in `matched_in`
/// outside the enum's own definition and test code. Catches a semantics
/// variant that is declared but never routed to a part computation.
#[derive(Clone, Debug)]
pub struct VariantCheck {
    /// The enum whose variants are extracted.
    pub type_name: String,
    /// File holding the enum definition.
    pub defined_in: String,
    /// File that must handle every variant.
    pub matched_in: String,
}

/// Parsed `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// All profiles, in name order.
    pub profiles: Vec<Profile>,
    /// Cache-key embed chain.
    pub embeds: Vec<EmbedLink>,
    /// Cache-key field-consultation checks.
    pub consults: Vec<ConsultCheck>,
    /// Cache-key variant-coverage checks.
    pub variants: Vec<VariantCheck>,
}

impl Config {
    /// Parse a `lint.toml` document.
    pub fn parse(src: &str) -> Result<Config, String> {
        let root = toml::parse(src)?;
        match root.get("schema").and_then(Value::as_str) {
            Some("netrel-lint/v1") => {}
            other => return Err(format!("unsupported lint.toml schema {other:?}")),
        }
        let mut cfg = Config::default();
        if let Some(Value::Table(profiles)) = root.get("profiles") {
            for (name, body) in profiles {
                let Value::Table(body) = body else {
                    return Err(format!("profile `{name}` must be a table"));
                };
                cfg.profiles.push(parse_profile(name, body)?);
            }
        }
        if let Some(Value::Table(rules)) = root.get("rules") {
            if let Some(Value::Table(ck)) = rules.get("cache-key") {
                parse_cache_key(ck, &mut cfg)?;
            }
        }
        Ok(cfg)
    }

    /// The union of rules from every profile matching `path`
    /// (workspace-relative, `/`-separated), sorted and deduplicated.
    pub fn rules_for(&self, path: &str) -> Vec<RuleId> {
        let mut rules: Vec<RuleId> = self
            .profiles
            .iter()
            .filter(|p| {
                p.paths.iter().any(|prefix| {
                    path == prefix
                        || path.starts_with(&format!("{}/", prefix.trim_end_matches('/')))
                })
            })
            .flat_map(|p| p.rules.iter().copied())
            .collect();
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    /// Whether `path` falls under any profile at all (files outside every
    /// profile are not scanned).
    pub fn covers(&self, path: &str) -> bool {
        self.profiles.iter().any(|p| {
            p.paths.iter().any(|prefix| {
                path == prefix || path.starts_with(&format!("{}/", prefix.trim_end_matches('/')))
            })
        })
    }
}

fn parse_profile(name: &str, body: &Table) -> Result<Profile, String> {
    let paths = body
        .get("paths")
        .and_then(Value::as_str_array)
        .ok_or_else(|| format!("profile `{name}` needs a `paths` string array"))?
        .into_iter()
        .map(String::from)
        .collect();
    let rule_names = body
        .get("rules")
        .and_then(Value::as_str_array)
        .ok_or_else(|| format!("profile `{name}` needs a `rules` string array"))?;
    let mut rules = Vec::new();
    for rn in rule_names {
        let rule = RuleId::from_name(rn)
            .ok_or_else(|| format!("profile `{name}`: unknown rule `{rn}`"))?;
        rules.push(rule);
    }
    Ok(Profile {
        name: name.to_string(),
        paths,
        rules,
    })
}

fn parse_cache_key(ck: &Table, cfg: &mut Config) -> Result<(), String> {
    let str_of = |t: &Table, key: &str, ctx: &str| -> Result<String, String> {
        t.get(key)
            .and_then(Value::as_str)
            .map(String::from)
            .ok_or_else(|| format!("cache-key {ctx}: missing string `{key}`"))
    };
    if let Some(Value::TableArray(items)) = ck.get("embed") {
        for t in items {
            cfg.embeds.push(EmbedLink {
                file: str_of(t, "file", "embed")?,
                container: str_of(t, "container", "embed")?,
                member: str_of(t, "member", "embed")?,
            });
        }
    }
    if let Some(Value::TableArray(items)) = ck.get("consult") {
        for t in items {
            cfg.consults.push(ConsultCheck {
                type_name: str_of(t, "type", "consult")?,
                defined_in: str_of(t, "defined_in", "consult")?,
                consulted_in: t
                    .get("consulted_in")
                    .and_then(Value::as_str_array)
                    .ok_or("cache-key consult: missing `consulted_in` string array")?
                    .into_iter()
                    .map(String::from)
                    .collect(),
            });
        }
    }
    if let Some(Value::TableArray(items)) = ck.get("variants") {
        for t in items {
            cfg.variants.push(VariantCheck {
                type_name: str_of(t, "type", "variants")?,
                defined_in: str_of(t, "defined_in", "variants")?,
                matched_in: str_of(t, "matched_in", "variants")?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
schema = "netrel-lint/v1"

[profiles.default]
paths = ["crates", "src"]
rules = ["unsafe-comment"]

[profiles.answer-affecting]
paths = ["crates/engine/src/planner.rs", "crates/s2bdd/src"]
rules = ["wall-clock", "hash-iteration", "thread-count"]

[[rules.cache-key.embed]]
file = "crates/engine/src/cache.rs"
container = "PlanKey"
member = "PartSolver"

[[rules.cache-key.consult]]
type = "PlanBudget"
defined_in = "crates/engine/src/planner.rs"
consulted_in = ["crates/engine/src/planner.rs", "crates/engine/src/lib.rs"]

[[rules.cache-key.variants]]
type = "SemanticsSpec"
defined_in = "crates/core/src/semantics.rs"
matched_in = "crates/core/src/semantics.rs"
"#;

    #[test]
    fn profiles_union_by_prefix() {
        let cfg = Config::parse(DOC).unwrap();
        assert_eq!(
            cfg.rules_for("crates/engine/src/planner.rs"),
            [
                RuleId::WallClock,
                RuleId::ThreadCount,
                RuleId::HashIteration,
                RuleId::UnsafeComment
            ]
        );
        assert_eq!(
            cfg.rules_for("crates/s2bdd/src/builder.rs"),
            [
                RuleId::WallClock,
                RuleId::ThreadCount,
                RuleId::HashIteration,
                RuleId::UnsafeComment
            ]
        );
        assert_eq!(
            cfg.rules_for("crates/obs/src/lib.rs"),
            [RuleId::UnsafeComment]
        );
        assert!(!cfg.covers("vendor/rand/src/lib.rs"));
        assert!(cfg.covers("src/lib.rs"));
    }

    #[test]
    fn cache_key_sections_parse() {
        let cfg = Config::parse(DOC).unwrap();
        assert_eq!(cfg.embeds.len(), 1);
        assert_eq!(cfg.embeds[0].member, "PartSolver");
        assert_eq!(cfg.consults[0].consulted_in.len(), 2);
        assert_eq!(cfg.variants[0].type_name, "SemanticsSpec");
    }

    #[test]
    fn unknown_rules_are_rejected() {
        let bad =
            "schema = \"netrel-lint/v1\"\n[profiles.p]\npaths = [\"x\"]\nrules = [\"nope\"]\n";
        assert!(Config::parse(bad).unwrap_err().contains("unknown rule"));
    }
}
