//! `netrel-lint` — run the workspace invariant pass from the command line.
//!
//! ```text
//! cargo run -p netrel-lint -- --deny-warnings --json=lint-report.json
//! ```
//!
//! Exit codes: `0` clean, `1` findings (hygiene findings —
//! `bad-suppression` / `unused-suppression` — only fail under
//! `--deny-warnings`), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

/// Finding rules that are hygiene warnings rather than invariant
/// violations: they fail the run only under `--deny-warnings`.
const WARNING_RULES: [&str; 2] = ["bad-suppression", "unused-suppression"];

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut deny_warnings = false;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--root=") {
            root = Some(PathBuf::from(v));
        } else if let Some(v) = arg.strip_prefix("--config=") {
            config_path = Some(PathBuf::from(v));
        } else if let Some(v) = arg.strip_prefix("--json=") {
            json_path = Some(PathBuf::from(v));
        } else if arg == "--deny-warnings" {
            deny_warnings = true;
        } else if arg == "--help" || arg == "-h" {
            println!(
                "usage: netrel-lint [--root=DIR] [--config=lint.toml] \
                 [--json=REPORT.json] [--deny-warnings]"
            );
            println!("Runs the workspace invariant pass; see docs/lints.md.");
            return ExitCode::SUCCESS;
        } else {
            eprintln!("netrel-lint: unknown argument {arg:?} (try --help)");
            return ExitCode::from(2);
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("netrel-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match netrel_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "netrel-lint: no lint.toml found above {} (pass --root=)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("netrel-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match netrel_lint::Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("netrel-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match netrel_lint::run(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("netrel-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.to_human());
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("netrel-lint: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let hard = report
        .findings
        .iter()
        .any(|f| !WARNING_RULES.contains(&f.rule));
    let warnings = report
        .findings
        .iter()
        .any(|f| WARNING_RULES.contains(&f.rule));
    if hard || (deny_warnings && warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
