//! A structural outline over the token stream.
//!
//! Rules need three structural facts the flat token stream does not give
//! them: *which item am I inside* (to scope the cache-key rule to one
//! struct or one impl block), *is this test code* (`#[cfg(test)]` modules
//! and `#[test]` functions are exempt from the runtime-invariant rules),
//! and *where does this item's body end* (brace matching). This module
//! computes exactly that — a single pass that pairs each item keyword with
//! its name, its attributes, and the token span of its body.
//!
//! It is deliberately not a parser: expressions, generics, and where
//! clauses are skipped by brace counting alone. That is sufficient because
//! every rule consumes *token* evidence inside a span, never grammar.

use crate::tokens::{File, TokKind};

/// What kind of item an [`Item`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `struct Name { … }` (or unit/tuple struct).
    Struct,
    /// `enum Name { … }`.
    Enum,
    /// `fn name(…) { … }`.
    Fn,
    /// `mod name { … }` (inline only; `mod name;` has no body).
    Mod,
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
}

/// One item found in a file.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name. For `impl` blocks this is the *self type* (the token
    /// after `for` when present, else the first type token after `impl`);
    /// for a trait impl `impl Default for PlanBudget`, `name` is
    /// `PlanBudget` and [`Item::trait_name`] is `Default`.
    pub name: String,
    /// The implemented trait for `impl Trait for Type`, else empty.
    pub trait_name: String,
    /// Token index of the introducing keyword.
    pub kw: usize,
    /// Token index of the opening `{` of the body, if the item has one.
    pub body_open: Option<usize>,
    /// Token index of the matching `}` (== `body_open` when missing).
    pub body_close: Option<usize>,
    /// Whether the item (or an enclosing module) is test-only:
    /// `#[cfg(test)]` or `#[test]` on it or on an ancestor.
    pub test_only: bool,
}

impl Item {
    /// Whether token index `i` lies inside this item's body.
    pub fn contains(&self, i: usize) -> bool {
        match (self.body_open, self.body_close) {
            (Some(o), Some(c)) => i >= o && i <= c,
            _ => false,
        }
    }
}

/// All items of one file, in source order (nested items included).
pub struct Outline {
    /// Every item found, outermost first within a nesting chain.
    pub items: Vec<Item>,
}

impl Outline {
    /// Build the outline of `file`.
    pub fn parse(file: &File) -> Outline {
        let mut items = Vec::new();
        // Stack of (close-brace token index, test_only) for enclosing items,
        // so nested items inherit test-ness from `#[cfg(test)] mod tests`.
        let mut enclosing: Vec<(usize, bool)> = Vec::new();
        let toks = &file.toks;
        let mut i = 0usize;
        // Attributes seen since the last item/statement boundary.
        let mut pending_attr_test = false;
        while i < toks.len() {
            enclosing.retain(|&(close, _)| i <= close);
            if toks[i].kind == TokKind::Punct && file.text(i) == "#" {
                // Attribute: `#[…]` or `#![…]`. Scan its bracket group.
                let mut j = i + 1;
                if file.is_punct(j, "!") {
                    j += 1;
                }
                if file.is_punct(j, "[") {
                    let close = match_bracket(file, j, "[", "]");
                    let attr_text = attr_tokens(file, j, close);
                    if attr_text.contains("cfg(test") || attr_text == "test" {
                        pending_attr_test = true;
                    }
                    i = close + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            let kind = match toks[i].kind {
                TokKind::Ident => match file.text(i) {
                    "struct" => Some(ItemKind::Struct),
                    "enum" => Some(ItemKind::Enum),
                    "fn" => Some(ItemKind::Fn),
                    "mod" => Some(ItemKind::Mod),
                    "impl" => Some(ItemKind::Impl),
                    "trait" => Some(ItemKind::Trait),
                    _ => None,
                },
                _ => None,
            };
            let Some(kind) = kind else {
                // Attributes survive modifiers (`pub`, `unsafe`, `async`,
                // doc comments) between them and their item; any statement
                // boundary discards them.
                if toks[i].kind == TokKind::Punct
                    && matches!(file.text(i), ";" | "," | "{" | "}" | "(" | ")")
                {
                    pending_attr_test = false;
                }
                i += 1;
                continue;
            };
            let (name, trait_name) = item_name(file, i, kind);
            // Find the body `{` — or a `;` first (declarations without one).
            let mut j = i + 1;
            let mut depth_paren = 0i32;
            let (mut body_open, mut body_close) = (None, None);
            while j < toks.len() {
                let t = file.text(j);
                match (toks[j].kind, t) {
                    (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth_paren += 1,
                    (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth_paren -= 1,
                    (TokKind::Punct, "{") if depth_paren == 0 => {
                        body_open = Some(j);
                        body_close = Some(match_bracket(file, j, "{", "}"));
                        break;
                    }
                    (TokKind::Punct, ";") if depth_paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let inherited_test = enclosing.iter().any(|&(_, t)| t);
            let test_only = pending_attr_test || inherited_test;
            pending_attr_test = false;
            if let Some(close) = body_close {
                enclosing.push((close, test_only));
            }
            items.push(Item {
                kind,
                name,
                trait_name,
                kw: i,
                body_open,
                body_close,
                test_only,
            });
            // Continue scanning *inside* the body to collect nested items.
            i = body_open.map_or(j + 1, |o| o + 1);
        }
        Outline { items }
    }

    /// The first item matching `kind` and `name`.
    pub fn find(&self, kind: ItemKind, name: &str) -> Option<&Item> {
        self.items
            .iter()
            .find(|it| it.kind == kind && it.name == name)
    }

    /// Whether token index `i` falls inside test-only code.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.items.iter().any(|it| it.test_only && it.contains(i))
    }
}

/// Flatten the tokens of an attribute group `[ … ]` into one string
/// (delimiters excluded) for substring matching like `cfg(test)`.
fn attr_tokens(file: &File, open: usize, close: usize) -> String {
    let mut s = String::new();
    for k in open + 1..close {
        s.push_str(file.text(k));
    }
    s
}

/// Token index of the bracket matching `open_tok` at index `open`
/// (self-healing on unbalanced input: returns the last token).
fn match_bracket(file: &File, open: usize, open_tok: &str, close_tok: &str) -> usize {
    let mut depth = 0i32;
    for k in open..file.toks.len() {
        if file.toks[k].kind == TokKind::Punct {
            let t = file.text(k);
            if t == open_tok {
                depth += 1;
            } else if t == close_tok {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    file.toks.len().saturating_sub(1)
}

/// Resolve an item's name (and trait, for trait impls).
fn item_name(file: &File, kw: usize, kind: ItemKind) -> (String, String) {
    let next_ident = |from: usize| -> Option<(usize, String)> {
        (from..file.toks.len())
            .take_while(|&k| !file.is_punct(k, "{") && !file.is_punct(k, ";"))
            .find(|&k| file.toks[k].kind == TokKind::Ident)
            .map(|k| (k, file.text(k).to_string()))
    };
    match kind {
        ItemKind::Impl => {
            // `impl<T> Trait for Type` / `impl Type`: the self type is the
            // last path segment before `for`-resolution; we take the ident
            // after `for` when present, else the first ident after `impl`
            // (skipping generic params).
            let mut k = kw + 1;
            // Skip a generic parameter list `<…>`.
            if file.is_punct(k, "<") {
                let mut depth = 0i32;
                while k < file.toks.len() {
                    if file.is_punct(k, "<") {
                        depth += 1;
                    } else if file.is_punct(k, ">") {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            let first = next_ident(k);
            let for_pos = (k..file.toks.len())
                .take_while(|&j| !file.is_punct(j, "{"))
                .find(|&j| file.is_ident(j, "for"));
            match (first, for_pos) {
                (Some((_, trait_name)), Some(fp)) => {
                    let name = next_ident(fp + 1).map(|(_, n)| n).unwrap_or_default();
                    (name, trait_name)
                }
                (Some((_, name)), None) => (name, String::new()),
                _ => (String::new(), String::new()),
            }
        }
        _ => (
            next_ident(kw + 1).map(|(_, n)| n).unwrap_or_default(),
            String::new(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outline(src: &str) -> (File, Outline) {
        let f = File::parse("t.rs", src);
        let o = Outline::parse(&f);
        (f, o)
    }

    #[test]
    fn finds_structs_enums_fns_and_their_spans() {
        let (f, o) =
            outline("struct A { x: u32 }\nenum B { C, D }\nfn e() { let y = 1; }\nstruct Unit;\n");
        let names: Vec<_> = o.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            names,
            [
                (ItemKind::Struct, "A"),
                (ItemKind::Enum, "B"),
                (ItemKind::Fn, "e"),
                (ItemKind::Struct, "Unit"),
            ]
        );
        let a = o.find(ItemKind::Struct, "A").unwrap();
        assert_eq!(f.text(a.body_close.unwrap()), "}");
        assert!(o
            .find(ItemKind::Struct, "Unit")
            .unwrap()
            .body_open
            .is_none());
    }

    #[test]
    fn impl_blocks_resolve_self_type_and_trait() {
        let (_, o) = outline(
            "impl Default for PlanBudget { fn default() -> Self { todo() } }\n\
             impl<T: Clone> Wrapper<T> { fn get(&self) {} }\n",
        );
        let imp = &o.items[0];
        assert_eq!(imp.kind, ItemKind::Impl);
        assert_eq!(imp.name, "PlanBudget");
        assert_eq!(imp.trait_name, "Default");
        let imp2 = o
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Impl)
            .nth(1)
            .unwrap();
        assert_eq!(imp2.name, "Wrapper");
        assert_eq!(imp2.trait_name, "");
    }

    #[test]
    fn cfg_test_modules_mark_nested_code_as_test_only() {
        let (f, o) = outline(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(!o.items[0].test_only, "live fn is not test code");
        let m = o.find(ItemKind::Mod, "tests").unwrap();
        assert!(m.test_only);
        let t = o.find(ItemKind::Fn, "t").unwrap();
        assert!(t.test_only);
        // The unwrap token inside the test fn is in test code.
        let unwrap_idx = (0..f.toks.len())
            .find(|&i| f.is_ident(i, "unwrap"))
            .unwrap();
        assert!(o.in_test_code(unwrap_idx));
    }

    #[test]
    fn fn_body_brace_is_not_confused_by_braces_in_params_or_where() {
        let (_, o) = outline("fn g(a: [u8; 3], b: fn() -> u32) -> u32 { a[0] as u32 + b() }\n");
        let g = o.find(ItemKind::Fn, "g").unwrap();
        assert!(g.body_open.is_some());
    }
}
