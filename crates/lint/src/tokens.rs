//! A minimal line/column-tracking Rust tokenizer.
//!
//! Just enough lexical structure for source-level rules: identifiers,
//! lifetimes, the four literal families (string, raw string, char, number —
//! byte variants included), comments (line and nested block), and
//! single-character punctuation. No keywords table, no operator gluing —
//! rules match token *sequences*, so `::` is simply two adjacent `:`
//! tokens (adjacency is checkable via byte offsets when it matters, which
//! it never does for these rules).
//!
//! The tokenizer must never misclassify a region: an `unwrap()` inside a
//! string literal is data, not code, and a `// SAFETY:` inside a raw
//! string is not a safety comment. That is the whole reason this exists
//! instead of a regex pass.

/// Lexical class of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    Str,
    /// Numeric literal (integer or float, any base, suffixes included).
    Num,
    /// Line comment (`// …`), text includes the slashes.
    LineComment,
    /// Block comment (`/* … */`, nesting handled), text includes delimiters.
    BlockComment,
    /// Any other single character (punctuation, operators, braces).
    Punct,
}

/// One token: class plus location. The text lives in the source buffer;
/// [`File::text`] slices it back out.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of the first character.
    pub line: u32,
    /// 1-based source column (in bytes) of the first character.
    pub col: u32,
}

/// One tokenized source file.
pub struct File {
    /// Workspace-relative path, used verbatim in findings.
    pub path: String,
    /// The raw source text.
    pub src: String,
    /// The token stream, in source order.
    pub toks: Vec<Tok>,
}

impl File {
    /// Tokenize `src` under the display path `path`.
    pub fn parse(path: impl Into<String>, src: impl Into<String>) -> File {
        let src = src.into();
        let toks = tokenize(&src);
        File {
            path: path.into(),
            src,
            toks,
        }
    }

    /// The source text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.src[t.start..t.end]
    }

    /// Whether token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && self.text(i) == text)
    }

    /// Whether token `i` is punctuation with exactly this text.
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && self.text(i) == text)
    }

    /// Index of the next non-comment token at or after `i`.
    pub fn skip_comments(&self, mut i: usize) -> usize {
        while i < self.toks.len()
            && matches!(
                self.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        {
            i += 1;
        }
        i
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenize one Rust source buffer. Unterminated literals and comments are
/// tolerated (the token simply runs to end of input): a lint must degrade
/// gracefully on the half-written files an editor hands it.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while cur.pos < cur.src.len() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let c = cur.peek(0);
        let kind = if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        } else if c == b'/' && cur.peek(1) == b'/' {
            while cur.pos < cur.src.len() && cur.peek(0) != b'\n' {
                cur.bump();
            }
            TokKind::LineComment
        } else if c == b'/' && cur.peek(1) == b'*' {
            cur.bump_n(2);
            let mut depth = 1usize;
            while cur.pos < cur.src.len() && depth > 0 {
                if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
                    depth += 1;
                    cur.bump_n(2);
                } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
                    depth -= 1;
                    cur.bump_n(2);
                } else {
                    cur.bump();
                }
            }
            TokKind::BlockComment
        } else if c == b'r' && (cur.peek(1) == b'"' || cur.peek(1) == b'#') && raw_str(&cur, 1) {
            lex_raw_string(&mut cur, 1);
            TokKind::Str
        } else if c == b'b' && cur.peek(1) == b'r' && raw_str(&cur, 2) {
            lex_raw_string(&mut cur, 2);
            TokKind::Str
        } else if c == b'b' && cur.peek(1) == b'"' {
            cur.bump();
            lex_quoted(&mut cur, b'"');
            TokKind::Str
        } else if c == b'b' && cur.peek(1) == b'\'' {
            cur.bump();
            lex_quoted(&mut cur, b'\'');
            TokKind::Char
        } else if c == b'r' && cur.peek(1) == b'#' && is_ident_start(cur.peek(2)) {
            // Raw identifier `r#match`.
            cur.bump_n(2);
            while is_ident_cont(cur.peek(0)) {
                cur.bump();
            }
            TokKind::Ident
        } else if is_ident_start(c) {
            while is_ident_cont(cur.peek(0)) {
                cur.bump();
            }
            TokKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            TokKind::Num
        } else if c == b'"' {
            lex_quoted(&mut cur, b'"');
            TokKind::Str
        } else if c == b'\'' {
            // `'a'` is a char literal; `'a` (no closing quote) is a
            // lifetime; `'\n'` is a char; `'_` is a lifetime.
            if is_ident_start(cur.peek(1)) {
                // Scan the identifier run after the quote; a closing quote
                // right after makes it a char literal.
                let mut k = 2;
                while is_ident_cont(cur.peek(k)) {
                    k += 1;
                }
                if cur.peek(k) == b'\'' {
                    cur.bump_n(k + 1);
                    TokKind::Char
                } else {
                    cur.bump(); // the quote
                    while is_ident_cont(cur.peek(0)) {
                        cur.bump();
                    }
                    TokKind::Lifetime
                }
            } else {
                lex_quoted(&mut cur, b'\'');
                TokKind::Char
            }
        } else {
            cur.bump();
            TokKind::Punct
        };
        toks.push(Tok {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    toks
}

/// Whether the bytes at `cur.pos + offset` begin `#*"` — i.e. the remainder
/// of a raw-string opener after its `r`/`br` prefix.
fn raw_str(cur: &Cursor<'_>, offset: usize) -> bool {
    let mut k = offset;
    while cur.peek(k) == b'#' {
        k += 1;
    }
    cur.peek(k) == b'"'
}

/// Consume a raw string starting at the `r`/`b` (skip `prefix` bytes first).
fn lex_raw_string(cur: &mut Cursor<'_>, prefix: usize) {
    cur.bump_n(prefix);
    let mut hashes = 0usize;
    while cur.peek(0) == b'#' {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        if cur.pos >= cur.src.len() {
            return;
        }
        if cur.peek(0) == b'"' {
            let mut k = 1;
            while k <= hashes && cur.peek(k) == b'#' {
                k += 1;
            }
            if k == hashes + 1 {
                cur.bump_n(hashes + 1);
                return;
            }
        }
        cur.bump();
    }
}

/// Consume a quoted literal (string or char) including its delimiters,
/// honoring backslash escapes.
fn lex_quoted(cur: &mut Cursor<'_>, quote: u8) {
    cur.bump(); // opening delimiter
    while cur.pos < cur.src.len() {
        match cur.peek(0) {
            b'\\' => cur.bump_n(2),
            c if c == quote => {
                cur.bump();
                return;
            }
            _ => cur.bump(),
        }
    }
}

/// Consume a numeric literal: prefix bases, underscores, a fractional part,
/// an exponent, and any alphanumeric suffix. Over-accepts degenerate forms;
/// a lint never needs to validate numbers, only to not split them.
fn lex_number(cur: &mut Cursor<'_>) {
    if cur.peek(0) == b'0' && matches!(cur.peek(1), b'x' | b'o' | b'b') {
        cur.bump_n(2);
    }
    let mut seen_dot = false;
    loop {
        let c = cur.peek(0);
        if c.is_ascii_alphanumeric() || c == b'_' {
            // `e+` / `e-` exponents keep the literal going.
            if (c == b'e' || c == b'E') && matches!(cur.peek(1), b'+' | b'-') {
                cur.bump();
            }
            cur.bump();
        } else if c == b'.' && !seen_dot && cur.peek(1).is_ascii_digit() {
            seen_dot = true;
            cur.bump();
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let f = File::parse("t.rs", src);
        (0..f.toks.len())
            .map(|i| (f.toks[i].kind, f.text(i).to_string()))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let got = kinds(r#"let s = "no.unwrap() here";"#);
        assert_eq!(got[3], (TokKind::Str, r#""no.unwrap() here""#.into()));
        assert!(!got
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_at_matching_fence() {
        let src = r###"let s = r#"quote " inside"# + r"plain";"###;
        let got = kinds(src);
        assert_eq!(got[3], (TokKind::Str, r###"r#"quote " inside"#"###.into()));
        assert_eq!(got[5], (TokKind::Str, r#"r"plain""#.into()));
    }

    #[test]
    fn byte_and_byte_raw_strings_lex_as_strings() {
        let got = kinds(r##"(b"bytes", br#"raw"#, b'x')"##);
        assert_eq!(got[1].0, TokKind::Str);
        assert_eq!(got[3].0, TokKind::Str);
        assert_eq!(got[5].0, TokKind::Char);
    }

    #[test]
    fn nested_block_comments_close_at_depth_zero() {
        let got = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].0, TokKind::BlockComment);
        assert_eq!(got[1].1, "/* outer /* inner */ still */");
        assert_eq!(got[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let got = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let s = 'static; }");
        let lifetimes: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        let chars: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        assert_eq!(chars, ["'z'"]);
    }

    #[test]
    fn escaped_char_literals_lex_whole() {
        let got = kinds(r"('\'', '\n', '\u{1F600}')");
        let chars: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, [r"'\''", r"'\n'", r"'\u{1F600}'"]);
    }

    #[test]
    fn line_and_column_tracking_is_one_based_and_exact() {
        let f = File::parse("t.rs", "ab\n  cd(e)\n");
        let at = |i: usize| (f.toks[i].line, f.toks[i].col, f.text(i).to_string());
        assert_eq!(at(0), (1, 1, "ab".into()));
        assert_eq!(at(1), (2, 3, "cd".into()));
        assert_eq!(at(2), (2, 5, "(".into()));
        assert_eq!(at(3), (2, 6, "e".into()));
    }

    #[test]
    fn numbers_lex_whole_including_exponents_and_suffixes() {
        let got = kinds("0x5eed 1_000_000usize 2.5e-3 1.0f64 0.95");
        assert!(got.iter().all(|(k, _)| *k == TokKind::Num));
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn comments_in_strings_are_not_comments() {
        let got = kinds(r#"let s = "// SAFETY: not a comment";"#);
        assert!(!got
            .iter()
            .any(|(k, _)| matches!(k, TokKind::LineComment | TokKind::BlockComment)));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let got = kinds("let r#match = 1;");
        assert_eq!(got[1], (TokKind::Ident, "r#match".into()));
    }

    #[test]
    fn unterminated_literals_do_not_hang_or_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b\"open"] {
            let _ = tokenize(src);
        }
    }
}
