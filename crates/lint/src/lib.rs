//! # netrel-lint — the workspace invariant pass
//!
//! Every accuracy and performance claim this repository makes rests on
//! invariants that `cargo test` can only probe pointwise: sampling is a
//! pure function of `(samples, seed)`, cache keys never alias across
//! solvers or semantics, observability never changes an answer bit, and
//! the service survives any input a client can send. One unkeyed
//! `HashMap` iteration or stray clock read in an answer-affecting module
//! breaks reproducibility on inputs no test happens to cover. This crate
//! checks the *whole class* at the source level, in CI, on every change.
//!
//! The pass is dependency-free by design (it audits everything else, so it
//! must stay trivially auditable): a hand-rolled Rust tokenizer
//! ([`tokens`]), a structural outline ([`outline`]), a TOML-subset config
//! reader ([`toml`]/[`config`]), per-file rules ([`rules`]), one
//! cross-file structural rule ([`structural`]), and dual human/JSON
//! reporting ([`report`]). Rules, regions, and the suppression syntax are
//! catalogued in `docs/lints.md`.
//!
//! ## Rules
//!
//! | rule | forbids | where (see `lint.toml`) |
//! |------|---------|-------------------------|
//! | `wall-clock` | `Instant::now` / `SystemTime` | answer-affecting modules |
//! | `thread-count` | `available_parallelism`, `num_cpus`, `rayon` | answer-affecting modules |
//! | `hash-iteration` | iterating `HashMap`/`HashSet` (Fx included) | answer-affecting modules |
//! | `panic-path` | `unwrap`/`expect`/panicking macros/unguarded `[…]` | serve request path |
//! | `unsafe-comment` | `unsafe` without `// SAFETY:` | whole workspace |
//! | `cache-key` | key-builder regions missing a watched field/variant | declared in `lint.toml` |
//!
//! Findings are suppressed line-by-line with
//! `// netrel-lint: allow(<rule>, reason = "…")`; suppressions are counted
//! in the report, a missing reason is a `bad-suppression` finding, and a
//! suppression that matches nothing is an `unused-suppression` finding.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod engine;
pub mod outline;
pub mod report;
pub mod rules;
pub mod structural;
pub mod suppress;
pub mod tokens;
pub mod toml;

pub use config::Config;
pub use engine::{find_root, run, run_snippet};
pub use report::{Finding, Report};
pub use rules::RuleId;
