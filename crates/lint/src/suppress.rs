//! `// netrel-lint: allow(rule, reason = "…")` suppression comments.
//!
//! A suppression silences findings of one named rule on one line: the
//! comment's own line when the comment trails code, or the next line that
//! carries a token when the comment stands alone. Suppressions are never
//! free — each one is counted and listed in the report, and a suppression
//! without a `reason` is itself a finding (`bad-suppression`), so the
//! escape hatch cannot silently become a policy.

use crate::tokens::{File, TokKind};

/// One parsed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// The justification, empty when missing (which is itself reported).
    pub reason: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
    /// Column of the comment.
    pub col: u32,
}

/// Extract every suppression in `file`.
pub fn suppressions(file: &File) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, tok) in file.toks.iter().enumerate() {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let text = file.text(i);
        let Some(rest) = text
            .trim_start_matches('/')
            .trim_start()
            .strip_prefix("netrel-lint:")
        else {
            continue;
        };
        let Some((rule, reason)) = parse_allow(rest) else {
            continue;
        };
        // Trailing comment (code earlier on the same line) targets its own
        // line; a standalone comment targets the next token-bearing line.
        let trailing = file.toks[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment));
        let target_line = if trailing {
            tok.line
        } else {
            file.toks[i + 1..]
                .iter()
                .find(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
                .map_or(tok.line, |t| t.line)
        };
        out.push(Suppression {
            rule,
            reason,
            comment_line: tok.line,
            target_line,
            col: tok.col,
        });
    }
    out
}

/// Parse `allow(rule)` / `allow(rule, reason = "…")` after the
/// `netrel-lint:` marker. Returns `None` for text that does not parse as a
/// suppression at all (it is then just a comment).
fn parse_allow(rest: &str) -> Option<(String, String)> {
    let rest = rest.trim_start();
    let args = rest.strip_prefix("allow")?.trim_start();
    let args = args.strip_prefix('(')?;
    let close = args.rfind(')')?;
    let args = &args[..close];
    let (rule, tail) = match args.split_once(',') {
        Some((r, t)) => (r.trim(), t.trim()),
        None => (args.trim(), ""),
    };
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    let reason = tail
        .strip_prefix("reason")
        .and_then(|t| t.trim_start().strip_prefix('='))
        .map(|t| t.trim().trim_matches('"').to_string())
        .unwrap_or_default();
    Some((rule.to_string(), reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_comment_targets_the_next_code_line() {
        let f = File::parse(
            "t.rs",
            "// netrel-lint: allow(thread-count, reason = \"seed-stable\")\nlet n = avail();\n",
        );
        let s = suppressions(&f);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "thread-count");
        assert_eq!(s[0].reason, "seed-stable");
        assert_eq!(s[0].comment_line, 1);
        assert_eq!(s[0].target_line, 2);
    }

    #[test]
    fn trailing_comment_targets_its_own_line() {
        let f = File::parse(
            "t.rs",
            "let x = 1; // netrel-lint: allow(wall-clock, reason = \"obs only\")\n",
        );
        let s = suppressions(&f);
        assert_eq!(s[0].target_line, 1);
    }

    #[test]
    fn missing_reason_parses_with_empty_reason() {
        let f = File::parse(
            "t.rs",
            "// netrel-lint: allow(hash-iteration)\nlet x = 1;\n",
        );
        let s = suppressions(&f);
        assert_eq!(s.len(), 1);
        assert!(s[0].reason.is_empty());
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let f = File::parse("t.rs", "// netrel-lint is great\n// allow(x)\nlet x = 1;\n");
        assert!(suppressions(&f).is_empty());
    }
}
