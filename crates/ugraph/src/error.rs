//! Error types for graph construction and queries.

use std::fmt;

/// Errors raised while building or querying uncertain graphs.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// A vertex id was at least the vertex count.
    VertexOutOfRange {
        /// Offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// An edge connected a vertex to itself (simple graphs only).
    SelfLoop {
        /// The looped vertex.
        vertex: usize,
    },
    /// The same vertex pair appeared twice (simple graphs only).
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// An edge probability was outside `(0, 1]`.
    InvalidProbability {
        /// Edge endpoints.
        u: usize,
        /// Edge endpoints.
        v: usize,
        /// Offending probability.
        p: f64,
    },
    /// An edge id was at least the edge count.
    EdgeOutOfRange {
        /// Offending edge id.
        edge: usize,
        /// Number of edges in the graph.
        edges: usize,
    },
    /// A terminal set was empty or referenced missing vertices.
    InvalidTerminals {
        /// Human-readable reason.
        reason: String,
    },
    /// The operation requires a connected graph.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, vertices } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {vertices} vertices)"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple uncertain graph"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(
                    f,
                    "duplicate edge ({u}, {v}) not allowed in a simple uncertain graph"
                )
            }
            GraphError::InvalidProbability { u, v, p } => {
                write!(f, "edge ({u}, {v}) has probability {p} outside (0, 1]")
            }
            GraphError::EdgeOutOfRange { edge, edges } => {
                write!(f, "edge {edge} out of range (graph has {edges} edges)")
            }
            GraphError::InvalidTerminals { reason } => write!(f, "invalid terminals: {reason}"),
            GraphError::Disconnected => write!(f, "operation requires a connected graph"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
