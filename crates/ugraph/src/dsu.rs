//! Union-find (disjoint set union) with union-by-size and path halving.
//!
//! Connectivity checks dominate the sampling hot path, so the structure is
//! reusable: [`Dsu::reset`] restores the all-singletons state without
//! reallocating.

/// Disjoint-set forest over `0..len`.
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    /// All-singletons structure over `len` elements.
    pub fn new(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "Dsu supports at most 2^32-1 elements"
        );
        Dsu {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Restore the all-singletons state (no reallocation).
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.size.fill(1);
        self.components = self.parent.len();
    }

    /// Representative of `x`'s component (path halving).
    #[inline]
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merge the components of `a` and `b`. Returns the surviving root if a
    /// merge happened, or `None` if they were already connected.
    #[inline]
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        if ra == rb {
            return None;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        Some(ra)
    }

    /// Whether `a` and `b` are in the same component.
    #[inline]
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s component.
    #[inline]
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = Dsu::new(5);
        assert_eq!(d.components(), 5);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        for i in 0..5 {
            assert_eq!(d.find(i), i);
            assert_eq!(d.component_size(i), 1);
        }
    }

    #[test]
    fn union_and_find() {
        let mut d = Dsu::new(6);
        assert!(d.union(0, 1).is_some());
        assert!(d.union(2, 3).is_some());
        assert!(d.union(1, 2).is_some());
        assert!(d.union(0, 3).is_none()); // already joined
        assert!(d.connected(0, 3));
        assert!(!d.connected(0, 4));
        assert_eq!(d.components(), 3);
        assert_eq!(d.component_size(2), 4);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut d = Dsu::new(4);
        d.union(0, 1);
        d.union(2, 3);
        d.reset();
        assert_eq!(d.components(), 4);
        assert!(!d.connected(0, 1));
        assert_eq!(d.component_size(0), 1);
    }

    #[test]
    fn union_returns_surviving_root() {
        let mut d = Dsu::new(4);
        d.union(0, 1);
        d.union(0, 2); // component {0,1,2} has size 3
        let root = d.union(0, 3).unwrap();
        assert_eq!(root, d.find(1));
        assert_eq!(root, d.find(3));
    }

    #[test]
    fn empty_dsu() {
        let d = Dsu::new(0);
        assert!(d.is_empty());
        assert_eq!(d.components(), 0);
    }

    #[test]
    fn chain_path_halving() {
        let n = 1000;
        let mut d = Dsu::new(n);
        for i in 0..n - 1 {
            d.union(i, i + 1);
        }
        assert_eq!(d.components(), 1);
        for i in 0..n {
            assert!(d.connected(0, i));
        }
    }
}
