//! Summary statistics for uncertain graphs (paper Table 2 columns).

use crate::graph::UncertainGraph;

/// Dataset statistics as reported in the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average degree `2|E|/|V|`.
    pub avg_degree: f64,
    /// Mean edge existence probability.
    pub avg_prob: f64,
    /// Minimum edge existence probability.
    pub min_prob: f64,
    /// Maximum edge existence probability.
    pub max_prob: f64,
}

impl GraphStats {
    /// Compute statistics for `g`.
    pub fn compute(g: &UncertainGraph) -> Self {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in g.edges() {
            lo = lo.min(e.p);
            hi = hi.max(e.p);
        }
        if g.num_edges() == 0 {
            lo = 0.0;
            hi = 0.0;
        }
        GraphStats {
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            avg_degree: g.avg_degree(),
            avg_prob: g.avg_prob(),
            min_prob: lo,
            max_prob: hi,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg_deg={:.2} avg_prob={:.3}",
            self.vertices, self.edges, self.avg_degree, self.avg_prob
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_triangle() {
        let g = UncertainGraph::new(3, [(0, 1, 0.2), (1, 2, 0.4), (0, 2, 0.9)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert!((s.avg_prob - 0.5).abs() < 1e-12);
        assert_eq!(s.min_prob, 0.2);
        assert_eq!(s.max_prob, 0.9);
        let txt = format!("{s}");
        assert!(txt.contains("|V|=3"));
    }

    #[test]
    fn stats_of_empty() {
        let g = UncertainGraph::new(2, []).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.min_prob, 0.0);
        assert_eq!(s.max_prob, 0.0);
    }
}
