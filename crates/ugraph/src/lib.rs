//! Uncertain-graph data structures and the graph algorithms the paper's
//! pipeline depends on.
//!
//! An [`UncertainGraph`] is a connected, undirected, simple graph whose edges
//! carry independent existence probabilities in `(0, 1]` (paper §3.1). The
//! crate also provides:
//!
//! * [`MultiGraph`]: a mutable multigraph (parallel edges, self-loops) used by
//!   the preprocessing transform rules,
//! * [`Dsu`]: union-find with union-by-size and path halving,
//! * [`bridges`]: iterative Tarjan bridges / articulation points,
//! * [`twoecc`]: 2-edge-connected components and the contracted bridge tree,
//! * [`steiner`]: minimal terminal-spanning subtree of a tree,
//! * [`ordering`]: edge orderings and frontier planning for BDD construction,
//! * [`sample`]: possible-world sampling with early-exit connectivity.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bridges;
pub mod dsu;
pub mod error;
pub mod graph;
pub mod multigraph;
pub mod ordering;
pub mod sample;
pub mod stats;
pub mod steiner;
pub mod traversal;
pub mod twoecc;

pub use dsu::Dsu;
pub use error::{GraphError, Result};
pub use graph::{EdgeId, UEdge, UncertainGraph, VertexId};
pub use multigraph::MultiGraph;
pub use ordering::{EdgeOrder, FrontierPlan};
pub use sample::{HopSampler, WorldSampler};
pub use stats::GraphStats;
