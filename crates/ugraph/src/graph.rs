//! The core uncertain-graph type.

use crate::error::{GraphError, Result};

/// Vertex identifier (dense, `0..num_vertices`).
pub type VertexId = usize;
/// Edge identifier (dense, `0..num_edges`, in insertion order).
pub type EdgeId = usize;

/// An undirected uncertain edge `(u, v)` with existence probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UEdge {
    /// First endpoint (always `<= v` after normalization).
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Existence probability in `(0, 1]`.
    pub p: f64,
}

impl UEdge {
    /// The endpoint opposite to `w`; panics if `w` is not an endpoint.
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        if w == self.u {
            self.v
        } else {
            debug_assert_eq!(w, self.v);
            self.u
        }
    }
}

/// A connected, undirected, simple uncertain graph (paper §3.1).
///
/// Construction validates vertex ranges, rejects self-loops and duplicate
/// edges, and requires probabilities in `(0, 1]`. Connectivity is *not*
/// enforced at construction (subgraphs produced by decomposition are built
/// through the same path); use [`UncertainGraph::is_connected`] where the
/// paper assumes it.
#[derive(Clone, Debug)]
pub struct UncertainGraph {
    n: usize,
    edges: Vec<UEdge>,
    /// adjacency: for each vertex, `(neighbor, edge id)` pairs.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
}

impl UncertainGraph {
    /// Build a graph with `n` vertices from an edge list.
    pub fn new(n: usize, edge_list: impl IntoIterator<Item = (usize, usize, f64)>) -> Result<Self> {
        let mut edges = Vec::new();
        let mut adj = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for (u, v, p) in edge_list {
            if u >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u,
                    vertices: n,
                });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    vertices: n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            if !(p > 0.0 && p <= 1.0) {
                return Err(GraphError::InvalidProbability { u, v, p });
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            if !seen.insert((a, b)) {
                return Err(GraphError::DuplicateEdge { u: a, v: b });
            }
            let id = edges.len();
            edges.push(UEdge { u: a, v: b, p });
            adj[a].push((b, id));
            adj[b].push((a, id));
        }
        Ok(UncertainGraph { n, edges, adj })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> UEdge {
        self.edges[e]
    }

    /// All edges in id order.
    #[inline]
    pub fn edges(&self) -> &[UEdge] {
        &self.edges
    }

    /// Existence probability of edge `e`.
    #[inline]
    pub fn prob(&self, e: EdgeId) -> f64 {
        self.edges[e].p
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v].len()
    }

    /// Average vertex degree (`2|E|/|V|`).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }

    /// Mean edge existence probability.
    pub fn avg_prob(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.edges.iter().map(|e| e.p).sum::<f64>() / self.edges.len() as f64
        }
    }

    /// Whether the graph (ignoring probabilities) is connected.
    /// Vacuously true for `n <= 1`.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        crate::traversal::connected_component(self, 0).len() == self.n
    }

    /// Validate a terminal set: non-empty, in range, no duplicates.
    /// Returns a sorted, deduplicated copy.
    pub fn validate_terminals(&self, terminals: &[VertexId]) -> Result<Vec<VertexId>> {
        if terminals.is_empty() {
            return Err(GraphError::InvalidTerminals {
                reason: "terminal set is empty".into(),
            });
        }
        let mut t = terminals.to_vec();
        t.sort_unstable();
        t.dedup();
        if let Some(&bad) = t.iter().find(|&&v| v >= self.n) {
            return Err(GraphError::InvalidTerminals {
                reason: format!(
                    "terminal {bad} out of range (graph has {} vertices)",
                    self.n
                ),
            });
        }
        Ok(t)
    }

    /// Replace the existence probability of edge `e`, returning the old
    /// value. The graph topology (and hence every structural index built
    /// on it) is unchanged; the mutated graph is exactly what
    /// [`UncertainGraph::new`] would produce on the updated edge list.
    pub fn update_edge_prob(&mut self, e: EdgeId, p: f64) -> Result<f64> {
        if e >= self.edges.len() {
            return Err(GraphError::EdgeOutOfRange {
                edge: e,
                edges: self.edges.len(),
            });
        }
        let edge = self.edges[e];
        if !(p > 0.0 && p <= 1.0) {
            return Err(GraphError::InvalidProbability {
                u: edge.u,
                v: edge.v,
                p,
            });
        }
        let old = edge.p;
        self.edges[e].p = p;
        Ok(old)
    }

    /// Append a new edge, returning its id. Validation matches
    /// [`UncertainGraph::new`]; because construction pushes edges and
    /// adjacency entries in insertion order, the mutated graph is
    /// byte-identical to a fresh build on the extended edge list.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p: f64) -> Result<EdgeId> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                vertices: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                vertices: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(GraphError::InvalidProbability { u, v, p });
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        if self.adj[a].iter().any(|&(w, _)| w == b) {
            return Err(GraphError::DuplicateEdge { u: a, v: b });
        }
        let id = self.edges.len();
        self.edges.push(UEdge { u: a, v: b, p });
        self.adj[a].push((b, id));
        self.adj[b].push((a, id));
        Ok(id)
    }

    /// Remove edge `e`, returning it. Later edge ids shift down by one
    /// (dense ids, as if the edge had never been inserted): adjacency
    /// lists keep insertion order with ids above `e` decremented, so the
    /// mutated graph is byte-identical to a fresh build on the shortened
    /// edge list.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<UEdge> {
        if e >= self.edges.len() {
            return Err(GraphError::EdgeOutOfRange {
                edge: e,
                edges: self.edges.len(),
            });
        }
        let removed = self.edges.remove(e);
        for list in &mut self.adj {
            list.retain_mut(|(_, id)| {
                if *id == e {
                    return false;
                }
                if *id > e {
                    *id -= 1;
                }
                true
            });
        }
        Ok(removed)
    }

    /// The vertex-induced subgraph on `keep` (a set of vertex ids), with
    /// vertices renumbered densely. Returns the subgraph and the old→new
    /// vertex mapping (entries for dropped vertices are `None`).
    pub fn induced_subgraph(&self, keep: &[bool]) -> (UncertainGraph, Vec<Option<VertexId>>) {
        assert_eq!(keep.len(), self.n);
        let mut map = vec![None; self.n];
        let mut next = 0usize;
        for v in 0..self.n {
            if keep[v] {
                map[v] = Some(next);
                next += 1;
            }
        }
        let edge_list: Vec<(usize, usize, f64)> = self
            .edges
            .iter()
            .filter_map(|e| match (map[e.u], map[e.v]) {
                (Some(a), Some(b)) => Some((a, b, e.p)),
                _ => None,
            })
            .collect();
        let g = UncertainGraph::new(next, edge_list)
            .expect("induced subgraph of a valid graph is valid");
        (g, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UncertainGraph {
        UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.6), (0, 2, 0.7)]).unwrap()
    }

    #[test]
    fn builds_and_reads_back() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.prob(1), 0.6);
        assert_eq!(g.edge(0).u, 0);
        assert_eq!(g.edge(0).v, 1);
        assert_eq!(g.degree(1), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn edge_endpoints_normalized() {
        let g = UncertainGraph::new(3, [(2, 0, 0.5)]).unwrap();
        assert_eq!(g.edge(0).u, 0);
        assert_eq!(g.edge(0).v, 2);
        assert_eq!(g.edge(0).other(0), 2);
        assert_eq!(g.edge(0).other(2), 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            UncertainGraph::new(2, [(0, 2, 0.5)]),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(1, 1, 0.5)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(0, 1, 0.0)]),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(0, 1, 1.5)]),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(0, 1, 0.5), (1, 0, 0.4)]),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn prob_one_allowed() {
        assert!(UncertainGraph::new(2, [(0, 1, 1.0)]).is_ok());
    }

    #[test]
    fn averages() {
        let g = triangle();
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert!((g.avg_prob() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn disconnected_detected() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (2, 3, 0.5)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn terminals_validation() {
        let g = triangle();
        assert_eq!(g.validate_terminals(&[2, 0, 2]).unwrap(), vec![0, 2]);
        assert!(g.validate_terminals(&[]).is_err());
        assert!(g.validate_terminals(&[5]).is_err());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.6), (2, 3, 0.7), (0, 3, 0.8)]).unwrap();
        let keep = vec![true, false, true, true];
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 3);
        // Only edges (2,3) and (0,3) survive.
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(1));
        assert_eq!(map[3], Some(2));
    }

    /// Mutated graphs must be indistinguishable from fresh builds on the
    /// mutated edge list — same edge ids, same probabilities, and the
    /// same adjacency-list order (which downstream traversals depend on).
    fn assert_same(a: &UncertainGraph, b: &UncertainGraph) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.edges.len(), b.edges.len());
        for (x, y) in a.edges.iter().zip(&b.edges) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert_eq!(x.p.to_bits(), y.p.to_bits());
        }
        assert_eq!(a.adj, b.adj);
    }

    #[test]
    fn update_edge_prob_matches_fresh_build() {
        let mut g = triangle();
        let old = g.update_edge_prob(1, 0.25).unwrap();
        assert_eq!(old, 0.6);
        let fresh = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.25), (0, 2, 0.7)]).unwrap();
        assert_same(&g, &fresh);
        assert!(matches!(
            g.update_edge_prob(3, 0.5),
            Err(GraphError::EdgeOutOfRange { edge: 3, edges: 3 })
        ));
        assert!(matches!(
            g.update_edge_prob(0, 0.0),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert_same(&g, &fresh);
    }

    #[test]
    fn add_edge_matches_fresh_build() {
        let mut g = UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.6)]).unwrap();
        // Reversed endpoints normalize exactly like construction.
        assert_eq!(g.add_edge(3, 2, 0.7).unwrap(), 2);
        let fresh = UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.6), (2, 3, 0.7)]).unwrap();
        assert_same(&g, &fresh);
        assert!(matches!(
            g.add_edge(1, 0, 0.4),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
        assert!(matches!(
            g.add_edge(0, 4, 0.5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(2, 2, 0.5),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 3, 1.5),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert_same(&g, &fresh);
    }

    #[test]
    fn remove_edge_matches_fresh_build() {
        let mut g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.6), (2, 3, 0.7), (0, 3, 0.8)]).unwrap();
        let removed = g.remove_edge(1).unwrap();
        assert_eq!((removed.u, removed.v, removed.p), (1, 2, 0.6));
        let fresh = UncertainGraph::new(4, [(0, 1, 0.5), (2, 3, 0.7), (0, 3, 0.8)]).unwrap();
        assert_same(&g, &fresh);
        assert!(matches!(
            g.remove_edge(3),
            Err(GraphError::EdgeOutOfRange { edge: 3, edges: 3 })
        ));
        assert_same(&g, &fresh);
    }

    #[test]
    fn mutation_sequence_matches_fresh_build() {
        let mut g = triangle();
        g.remove_edge(0).unwrap();
        g.add_edge(0, 1, 0.9).unwrap();
        g.update_edge_prob(0, 0.3).unwrap();
        // After: edges (1,2,0.3), (0,2,0.7), (0,1,0.9) in that id order.
        let fresh = UncertainGraph::new(3, [(1, 2, 0.3), (0, 2, 0.7), (0, 1, 0.9)]).unwrap();
        assert_same(&g, &fresh);
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::new(0, []).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.avg_prob(), 0.0);
    }
}
