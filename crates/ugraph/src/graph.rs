//! The core uncertain-graph type.

use crate::error::{GraphError, Result};

/// Vertex identifier (dense, `0..num_vertices`).
pub type VertexId = usize;
/// Edge identifier (dense, `0..num_edges`, in insertion order).
pub type EdgeId = usize;

/// An undirected uncertain edge `(u, v)` with existence probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UEdge {
    /// First endpoint (always `<= v` after normalization).
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Existence probability in `(0, 1]`.
    pub p: f64,
}

impl UEdge {
    /// The endpoint opposite to `w`; panics if `w` is not an endpoint.
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        if w == self.u {
            self.v
        } else {
            debug_assert_eq!(w, self.v);
            self.u
        }
    }
}

/// A connected, undirected, simple uncertain graph (paper §3.1).
///
/// Construction validates vertex ranges, rejects self-loops and duplicate
/// edges, and requires probabilities in `(0, 1]`. Connectivity is *not*
/// enforced at construction (subgraphs produced by decomposition are built
/// through the same path); use [`UncertainGraph::is_connected`] where the
/// paper assumes it.
#[derive(Clone, Debug)]
pub struct UncertainGraph {
    n: usize,
    edges: Vec<UEdge>,
    /// adjacency: for each vertex, `(neighbor, edge id)` pairs.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
}

impl UncertainGraph {
    /// Build a graph with `n` vertices from an edge list.
    pub fn new(n: usize, edge_list: impl IntoIterator<Item = (usize, usize, f64)>) -> Result<Self> {
        let mut edges = Vec::new();
        let mut adj = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for (u, v, p) in edge_list {
            if u >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u,
                    vertices: n,
                });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    vertices: n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            if !(p > 0.0 && p <= 1.0) {
                return Err(GraphError::InvalidProbability { u, v, p });
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            if !seen.insert((a, b)) {
                return Err(GraphError::DuplicateEdge { u: a, v: b });
            }
            let id = edges.len();
            edges.push(UEdge { u: a, v: b, p });
            adj[a].push((b, id));
            adj[b].push((a, id));
        }
        Ok(UncertainGraph { n, edges, adj })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> UEdge {
        self.edges[e]
    }

    /// All edges in id order.
    #[inline]
    pub fn edges(&self) -> &[UEdge] {
        &self.edges
    }

    /// Existence probability of edge `e`.
    #[inline]
    pub fn prob(&self, e: EdgeId) -> f64 {
        self.edges[e].p
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v].len()
    }

    /// Average vertex degree (`2|E|/|V|`).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }

    /// Mean edge existence probability.
    pub fn avg_prob(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.edges.iter().map(|e| e.p).sum::<f64>() / self.edges.len() as f64
        }
    }

    /// Whether the graph (ignoring probabilities) is connected.
    /// Vacuously true for `n <= 1`.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        crate::traversal::connected_component(self, 0).len() == self.n
    }

    /// Validate a terminal set: non-empty, in range, no duplicates.
    /// Returns a sorted, deduplicated copy.
    pub fn validate_terminals(&self, terminals: &[VertexId]) -> Result<Vec<VertexId>> {
        if terminals.is_empty() {
            return Err(GraphError::InvalidTerminals {
                reason: "terminal set is empty".into(),
            });
        }
        let mut t = terminals.to_vec();
        t.sort_unstable();
        t.dedup();
        if let Some(&bad) = t.iter().find(|&&v| v >= self.n) {
            return Err(GraphError::InvalidTerminals {
                reason: format!(
                    "terminal {bad} out of range (graph has {} vertices)",
                    self.n
                ),
            });
        }
        Ok(t)
    }

    /// The vertex-induced subgraph on `keep` (a set of vertex ids), with
    /// vertices renumbered densely. Returns the subgraph and the old→new
    /// vertex mapping (entries for dropped vertices are `None`).
    pub fn induced_subgraph(&self, keep: &[bool]) -> (UncertainGraph, Vec<Option<VertexId>>) {
        assert_eq!(keep.len(), self.n);
        let mut map = vec![None; self.n];
        let mut next = 0usize;
        for v in 0..self.n {
            if keep[v] {
                map[v] = Some(next);
                next += 1;
            }
        }
        let edge_list: Vec<(usize, usize, f64)> = self
            .edges
            .iter()
            .filter_map(|e| match (map[e.u], map[e.v]) {
                (Some(a), Some(b)) => Some((a, b, e.p)),
                _ => None,
            })
            .collect();
        let g = UncertainGraph::new(next, edge_list)
            .expect("induced subgraph of a valid graph is valid");
        (g, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UncertainGraph {
        UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.6), (0, 2, 0.7)]).unwrap()
    }

    #[test]
    fn builds_and_reads_back() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.prob(1), 0.6);
        assert_eq!(g.edge(0).u, 0);
        assert_eq!(g.edge(0).v, 1);
        assert_eq!(g.degree(1), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn edge_endpoints_normalized() {
        let g = UncertainGraph::new(3, [(2, 0, 0.5)]).unwrap();
        assert_eq!(g.edge(0).u, 0);
        assert_eq!(g.edge(0).v, 2);
        assert_eq!(g.edge(0).other(0), 2);
        assert_eq!(g.edge(0).other(2), 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            UncertainGraph::new(2, [(0, 2, 0.5)]),
            Err(GraphError::VertexOutOfRange { vertex: 2, .. })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(1, 1, 0.5)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(0, 1, 0.0)]),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(0, 1, 1.5)]),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            UncertainGraph::new(2, [(0, 1, 0.5), (1, 0, 0.4)]),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn prob_one_allowed() {
        assert!(UncertainGraph::new(2, [(0, 1, 1.0)]).is_ok());
    }

    #[test]
    fn averages() {
        let g = triangle();
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert!((g.avg_prob() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn disconnected_detected() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5), (2, 3, 0.5)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn terminals_validation() {
        let g = triangle();
        assert_eq!(g.validate_terminals(&[2, 0, 2]).unwrap(), vec![0, 2]);
        assert!(g.validate_terminals(&[]).is_err());
        assert!(g.validate_terminals(&[5]).is_err());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.6), (2, 3, 0.7), (0, 3, 0.8)]).unwrap();
        let keep = vec![true, false, true, true];
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 3);
        // Only edges (2,3) and (0,3) survive.
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(1));
        assert_eq!(map[3], Some(2));
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::new(0, []).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.avg_prob(), 0.0);
    }
}
