//! Edge orderings and frontier planning for frontier-based BDD construction.
//!
//! The width of a frontier-based BDD is governed by the edge processing
//! order: a vertex occupies the frontier from the first to the last layer
//! that touches it, so orders with good locality (BFS) keep the frontier —
//! and therefore the diagram — small. The ordering choice is benchmarked as
//! an ablation (`ablation_ordering`).

use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// Edge processing order strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum EdgeOrder {
    /// Edge-id (insertion) order.
    Input,
    /// Breadth-first order from a start vertex (good on road networks and
    /// other low-bandwidth graphs).
    #[default]
    Bfs,
    /// Depth-first order from a start vertex.
    Dfs,
    /// Degeneracy (min-degree elimination) vertex order with edges grouped
    /// by their later endpoint. Tracks pathwidth far better than BFS on
    /// dense social graphs (e.g. the karate club: width 9 vs 17), which is
    /// what makes exact diagrams feasible there.
    Degeneracy,
}

/// Compute an edge processing order. `start` seeds the traversal orders; the
/// first terminal is the natural choice. Unreached components are appended in
/// input order so every edge appears exactly once.
pub fn edge_order(g: &UncertainGraph, strategy: EdgeOrder, start: VertexId) -> Vec<EdgeId> {
    match strategy {
        EdgeOrder::Input => (0..g.num_edges()).collect(),
        EdgeOrder::Bfs => traversal_order(g, start, false),
        EdgeOrder::Dfs => traversal_order(g, start, true),
        EdgeOrder::Degeneracy => degeneracy_order(g),
    }
}

/// Min-degree (degeneracy) elimination order over vertices; edges sorted by
/// the *later* endpoint's position, ties by the earlier endpoint. A vertex
/// then stays in the frontier only between its first and last neighbor in
/// elimination order, approximating a small vertex separation.
fn degeneracy_order(g: &UncertainGraph) -> Vec<EdgeId> {
    let n = g.num_vertices();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    // Simple bucket queue over degrees.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); n.max(1)];
    for v in 0..n {
        buckets[deg[v].min(n.saturating_sub(1))].push(v);
    }
    let mut pos = vec![0usize; n];
    let mut order_idx = 0usize;
    let mut cursor = 0usize;
    while order_idx < n {
        // Find the lowest non-empty bucket (cursor can go back down by 1
        // after each removal, so rewind conservatively).
        cursor = cursor.saturating_sub(1);
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        let Some(v) = buckets[cursor].pop() else {
            continue;
        };
        if removed[v] || deg[v].min(n - 1) != cursor {
            continue; // stale bucket entry
        }
        removed[v] = true;
        pos[v] = order_idx;
        order_idx += 1;
        for &(w, _) in g.neighbors(v) {
            if !removed[w] {
                deg[w] -= 1;
                buckets[deg[w].min(n - 1)].push(w);
            }
        }
    }
    let mut ids: Vec<EdgeId> = (0..g.num_edges()).collect();
    ids.sort_by_key(|&e| {
        let ed = g.edge(e);
        let (a, b) = (pos[ed.u], pos[ed.v]);
        (a.max(b), a.min(b))
    });
    ids
}

/// Width during layer `l` counts vertices with `first <= l <= last`
/// (difference array + prefix sum) — the single implementation behind both
/// `FrontierPlan::build`'s `max_width` and
/// [`FrontierPlan::layer_widths`], so cost models can never diverge from
/// the solver's actual frontier.
fn widths_from_touch(
    first_touch: &[usize],
    last_touch: &[usize],
    layers: usize,
) -> impl Iterator<Item = usize> {
    let mut delta = vec![0isize; layers + 1];
    for v in 0..first_touch.len() {
        if first_touch[v] != usize::MAX {
            delta[first_touch[v]] += 1;
            delta[last_touch[v] + 1] -= 1;
        }
    }
    delta.truncate(layers);
    let mut cur = 0isize;
    delta.into_iter().map(move |d| {
        cur += d;
        cur as usize
    })
}

/// Emit edges grouped by visit order of their first-visited endpoint.
fn traversal_order(g: &UncertainGraph, start: VertexId, depth_first: bool) -> Vec<EdgeId> {
    let n = g.num_vertices();
    let mut edge_done = vec![false; g.num_edges()];
    let mut vertex_seen = vec![false; n];
    let mut order = Vec::with_capacity(g.num_edges());
    let mut pending: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();

    let mut roots: Vec<VertexId> = Vec::with_capacity(n);
    if start < n {
        roots.push(start);
    }
    roots.extend(0..n);

    for root in roots {
        if vertex_seen[root] {
            continue;
        }
        vertex_seen[root] = true;
        pending.push_back(root);
        while let Some(v) = if depth_first {
            pending.pop_back()
        } else {
            pending.pop_front()
        } {
            for &(w, eid) in g.neighbors(v) {
                if !edge_done[eid] {
                    edge_done[eid] = true;
                    order.push(eid);
                }
                if !vertex_seen[w] {
                    vertex_seen[w] = true;
                    pending.push_back(w);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), g.num_edges());
    order
}

/// Precomputed frontier schedule for one `(graph, order)` pair.
///
/// Layer `l` processes edge `order[l]`. A vertex is *in the frontier during
/// layer `l`* iff `first_touch[v] <= l <= last_touch[v]`; it *enters* at its
/// first touch and *leaves* after its last.
#[derive(Clone, Debug)]
pub struct FrontierPlan {
    /// Edge processing order; `order[l]` is the edge id handled at layer `l`.
    pub order: Vec<EdgeId>,
    /// First layer touching each vertex (`usize::MAX` for isolated vertices).
    pub first_touch: Vec<usize>,
    /// Last layer touching each vertex (`usize::MAX` for isolated vertices).
    pub last_touch: Vec<usize>,
    /// Maximum number of simultaneously live frontier vertices.
    pub max_width: usize,
}

impl FrontierPlan {
    /// Build the plan for a given order (must be a permutation of edge ids).
    pub fn build(g: &UncertainGraph, order: Vec<EdgeId>) -> Self {
        assert_eq!(order.len(), g.num_edges(), "order must cover every edge");
        let n = g.num_vertices();
        let mut first_touch = vec![usize::MAX; n];
        let mut last_touch = vec![usize::MAX; n];
        for (l, &eid) in order.iter().enumerate() {
            let e = g.edge(eid);
            for v in [e.u, e.v] {
                if first_touch[v] == usize::MAX {
                    first_touch[v] = l;
                }
                last_touch[v] = l;
            }
        }
        let max_width = widths_from_touch(&first_touch, &last_touch, order.len())
            .max()
            .unwrap_or(0);
        FrontierPlan {
            order,
            first_touch,
            last_touch,
            max_width,
        }
    }

    /// Number of live frontier vertices during each layer (the per-layer
    /// profile behind [`max_width`](FrontierPlan::max_width)) — the input
    /// of diagram-size cost models.
    pub fn layer_widths(&self) -> impl Iterator<Item = usize> + '_ {
        widths_from_touch(&self.first_touch, &self.last_touch, self.order.len())
    }

    /// Convenience: order by strategy, then build.
    pub fn for_strategy(g: &UncertainGraph, strategy: EdgeOrder, start: VertexId) -> Self {
        Self::build(g, edge_order(g, strategy, start))
    }

    /// Whether vertex `v` first appears at layer `l`.
    #[inline]
    pub fn enters(&self, v: VertexId, l: usize) -> bool {
        self.first_touch[v] == l
    }

    /// Whether vertex `v`'s last incident edge is processed at layer `l`
    /// (after which it leaves the frontier).
    #[inline]
    pub fn leaves(&self, v: VertexId, l: usize) -> bool {
        self.last_touch[v] == l
    }

    /// Number of layers (= number of edges).
    #[inline]
    pub fn layers(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2x3() -> UncertainGraph {
        // 0-1-2
        // |   |  (plus verticals 0-3, 1-4, 2-5 and bottom 3-4-5)
        // 3-4-5
        UncertainGraph::new(
            6,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (3, 4, 0.5),
                (4, 5, 0.5),
                (0, 3, 0.5),
                (1, 4, 0.5),
                (2, 5, 0.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn orders_are_permutations() {
        let g = grid2x3();
        for strat in [
            EdgeOrder::Input,
            EdgeOrder::Bfs,
            EdgeOrder::Dfs,
            EdgeOrder::Degeneracy,
        ] {
            let mut o = edge_order(&g, strat, 0);
            o.sort_unstable();
            assert_eq!(o, (0..g.num_edges()).collect::<Vec<_>>(), "{strat:?}");
        }
    }

    #[test]
    fn input_order_is_identity() {
        let g = grid2x3();
        assert_eq!(
            edge_order(&g, EdgeOrder::Input, 0),
            vec![0, 1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn plan_touch_spans() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        let plan = FrontierPlan::build(&g, vec![0, 1]);
        assert_eq!(plan.first_touch, vec![0, 0, 1]);
        assert_eq!(plan.last_touch, vec![0, 1, 1]);
        assert!(plan.enters(0, 0) && plan.leaves(0, 0));
        assert!(plan.enters(1, 0) && plan.leaves(1, 1));
        assert!(plan.enters(2, 1) && plan.leaves(2, 1));
        assert_eq!(plan.layers(), 2);
    }

    #[test]
    fn max_width_on_path_is_two() {
        let g = UncertainGraph::new(5, (0..4).map(|i| (i, i + 1, 0.5))).unwrap();
        let plan = FrontierPlan::for_strategy(&g, EdgeOrder::Bfs, 0);
        assert_eq!(plan.max_width, 2);
    }

    #[test]
    fn bfs_narrower_than_bad_input_order_on_ladder() {
        // A ladder processed rung-by-rung via input order has width ~4;
        // BFS from a corner keeps it at 3.
        let mut edges = Vec::new();
        let len = 20usize;
        for i in 0..len {
            edges.push((2 * i, 2 * i + 1, 0.5)); // rungs first: bad input order
        }
        for i in 0..len - 1 {
            edges.push((2 * i, 2 * i + 2, 0.5));
            edges.push((2 * i + 1, 2 * i + 3, 0.5));
        }
        let g = UncertainGraph::new(2 * len, edges).unwrap();
        let input = FrontierPlan::for_strategy(&g, EdgeOrder::Input, 0);
        let bfs = FrontierPlan::for_strategy(&g, EdgeOrder::Bfs, 0);
        assert!(
            bfs.max_width < input.max_width,
            "bfs {} vs input {}",
            bfs.max_width,
            input.max_width
        );
    }

    #[test]
    fn layer_widths_profile_matches_max_and_oracle() {
        let g = grid2x3();
        for strat in [EdgeOrder::Input, EdgeOrder::Bfs, EdgeOrder::Degeneracy] {
            let plan = FrontierPlan::for_strategy(&g, strat, 0);
            let widths: Vec<usize> = plan.layer_widths().collect();
            assert_eq!(widths.len(), plan.layers());
            assert_eq!(widths.iter().copied().max().unwrap_or(0), plan.max_width);
            for (l, &w) in widths.iter().enumerate() {
                let oracle = (0..g.num_vertices())
                    .filter(|&v| {
                        plan.first_touch[v] != usize::MAX
                            && plan.first_touch[v] <= l
                            && plan.last_touch[v] >= l
                    })
                    .count();
                assert_eq!(w, oracle, "{strat:?} layer {l}");
            }
        }
    }

    #[test]
    fn isolated_vertices_never_touched() {
        let g = UncertainGraph::new(4, [(0, 1, 0.5)]).unwrap();
        let plan = FrontierPlan::for_strategy(&g, EdgeOrder::Bfs, 0);
        assert_eq!(plan.first_touch[2], usize::MAX);
        assert_eq!(plan.first_touch[3], usize::MAX);
    }

    #[test]
    fn disconnected_components_all_covered() {
        let g = UncertainGraph::new(6, [(0, 1, 0.5), (2, 3, 0.5), (4, 5, 0.5)]).unwrap();
        for strat in [EdgeOrder::Bfs, EdgeOrder::Dfs] {
            let mut o = edge_order(&g, strat, 0);
            o.sort_unstable();
            assert_eq!(o, vec![0, 1, 2]);
        }
    }

    /// O(n·m) oracle for the frontier width.
    fn naive_max_width(g: &UncertainGraph, plan: &FrontierPlan) -> usize {
        (0..plan.layers())
            .map(|l| {
                (0..g.num_vertices())
                    .filter(|&v| {
                        plan.first_touch[v] != usize::MAX
                            && plan.first_touch[v] <= l
                            && plan.last_touch[v] >= l
                    })
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    proptest::proptest! {
        #[test]
        fn max_width_matches_oracle(
            edges in proptest::collection::vec((0usize..9, 0usize..9), 1..18),
            strat_idx in 0usize..4,
        ) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    seen.insert(key).then_some((key.0, key.1, 0.5))
                })
                .collect();
            proptest::prop_assume!(!list.is_empty());
            let g = UncertainGraph::new(9, list).unwrap();
            let strat = [EdgeOrder::Input, EdgeOrder::Bfs, EdgeOrder::Dfs, EdgeOrder::Degeneracy][strat_idx];
            let plan = FrontierPlan::for_strategy(&g, strat, 0);
            proptest::prop_assert_eq!(plan.max_width, naive_max_width(&g, &plan));
        }
    }
}
