//! A mutable undirected multigraph for the preprocessing transform rules.
//!
//! The series/parallel/loop reductions (paper §5, Transform) temporarily
//! create parallel edges and self-loops, so they operate on this structure
//! rather than on the simple [`UncertainGraph`]. Edges are tombstoned on
//! removal; adjacency lists are cleaned lazily.

use crate::error::{GraphError, Result};
use crate::graph::{UncertainGraph, VertexId};

/// A multigraph edge; `u == v` encodes a self-loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MEdge {
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint (may equal `u`).
    pub v: VertexId,
    /// Existence probability in `(0, 1]`.
    pub p: f64,
}

/// Undirected multigraph with tombstoned edge removal.
#[derive(Clone, Debug)]
pub struct MultiGraph {
    n: usize,
    edges: Vec<Option<MEdge>>,
    adj: Vec<Vec<usize>>, // edge ids, possibly stale
    alive: usize,
}

impl MultiGraph {
    /// Empty multigraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        MultiGraph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            alive: 0,
        }
    }

    /// Copy of a simple uncertain graph.
    pub fn from_uncertain(g: &UncertainGraph) -> Self {
        let mut mg = MultiGraph::new(g.num_vertices());
        for e in g.edges() {
            mg.add_edge(e.u, e.v, e.p);
        }
        mg
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.alive
    }

    /// Add an edge (loops and parallels allowed); returns its id.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p: f64) -> usize {
        assert!(u < self.n && v < self.n, "endpoint out of range");
        assert!(p > 0.0 && p <= 1.0, "probability out of range");
        let id = self.edges.len();
        self.edges.push(Some(MEdge { u, v, p }));
        self.adj[u].push(id);
        if v != u {
            self.adj[v].push(id);
        }
        self.alive += 1;
        id
    }

    /// The edge with id `e`, if alive.
    #[inline]
    pub fn edge(&self, e: usize) -> Option<MEdge> {
        self.edges.get(e).copied().flatten()
    }

    /// Remove edge `e`. Returns the removed edge; `None` if already gone.
    pub fn remove_edge(&mut self, e: usize) -> Option<MEdge> {
        let slot = self.edges.get_mut(e)?;
        let removed = slot.take();
        if removed.is_some() {
            self.alive -= 1;
        }
        removed
    }

    /// Live incident edges of `v` as `(edge_id, other_endpoint)`; self-loops
    /// appear once with `other == v`. Cleans tombstones from the adjacency
    /// list as a side effect.
    pub fn incident(&mut self, v: VertexId) -> Vec<(usize, VertexId)> {
        let edges = &self.edges;
        self.adj[v].retain(|&id| edges[id].is_some());
        self.adj[v]
            .iter()
            .map(|&id| {
                let e = self.edges[id].expect("retained edge is alive");
                (id, if e.u == v { e.v } else { e.u })
            })
            .collect()
    }

    /// Degree of `v` counting live edges; a self-loop contributes 1 here
    /// (the transform rules treat loops separately).
    pub fn degree(&mut self, v: VertexId) -> usize {
        let edges = &self.edges;
        self.adj[v].retain(|&id| edges[id].is_some());
        self.adj[v].len()
    }

    /// Iterate live edges as `(id, edge)`.
    pub fn live_edges(&self) -> impl Iterator<Item = (usize, MEdge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i, e)))
    }

    /// Convert to a simple [`UncertainGraph`], dropping isolated vertices.
    ///
    /// Fails with [`GraphError::SelfLoop`] / [`GraphError::DuplicateEdge`] if
    /// loops or parallel edges remain (the transform fixpoint guarantees they
    /// don't). Returns the graph and the old→new vertex map.
    pub fn to_uncertain(&self) -> Result<(UncertainGraph, Vec<Option<VertexId>>)> {
        let mut used = vec![false; self.n];
        for (_, e) in self.live_edges() {
            used[e.u] = true;
            used[e.v] = true;
        }
        let mut map = vec![None; self.n];
        let mut next = 0usize;
        for v in 0..self.n {
            if used[v] {
                map[v] = Some(next);
                next += 1;
            }
        }
        let edge_list: Vec<(usize, usize, f64)> = self
            .live_edges()
            .map(|(_, e)| {
                (
                    map[e.u].expect("endpoint marked used"),
                    map[e.v].expect("endpoint marked used"),
                    e.p,
                )
            })
            .collect();
        let g = UncertainGraph::new(next, edge_list)?;
        Ok((g, map))
    }

    /// Convert keeping *all* vertices (including isolated ones), without
    /// renumbering. Fails on residual loops/parallels like `to_uncertain`.
    pub fn to_uncertain_dense(&self) -> std::result::Result<UncertainGraph, GraphError> {
        UncertainGraph::new(self.n, self.live_edges().map(|(_, e)| (e.u, e.v, e.p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut mg = MultiGraph::new(3);
        let a = mg.add_edge(0, 1, 0.5);
        let b = mg.add_edge(1, 2, 0.6);
        assert_eq!(mg.num_edges(), 2);
        assert_eq!(mg.remove_edge(a).unwrap().p, 0.5);
        assert_eq!(mg.num_edges(), 1);
        assert!(mg.remove_edge(a).is_none(), "double remove is a no-op");
        assert_eq!(mg.edge(b).unwrap().u, 1);
    }

    #[test]
    fn parallel_edges_and_loops_allowed() {
        let mut mg = MultiGraph::new(2);
        mg.add_edge(0, 1, 0.5);
        mg.add_edge(0, 1, 0.7);
        mg.add_edge(0, 0, 0.9);
        assert_eq!(mg.num_edges(), 3);
        assert_eq!(mg.degree(0), 3);
        assert_eq!(mg.degree(1), 2);
        let inc: Vec<_> = mg.incident(0);
        assert_eq!(inc.len(), 3);
        assert!(inc.iter().any(|&(_, o)| o == 0), "loop reports itself");
    }

    #[test]
    fn incident_cleans_tombstones() {
        let mut mg = MultiGraph::new(2);
        let a = mg.add_edge(0, 1, 0.5);
        mg.add_edge(0, 1, 0.6);
        mg.remove_edge(a);
        assert_eq!(mg.incident(0).len(), 1);
        assert_eq!(mg.degree(1), 1);
    }

    #[test]
    fn to_uncertain_drops_isolated_and_renumbers() {
        let mut mg = MultiGraph::new(4);
        mg.add_edge(1, 3, 0.5);
        let (g, map) = mg.to_uncertain().unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(map, vec![None, Some(0), None, Some(1)]);
    }

    #[test]
    fn to_uncertain_rejects_multi() {
        let mut mg = MultiGraph::new(2);
        mg.add_edge(0, 1, 0.5);
        mg.add_edge(1, 0, 0.6);
        assert!(mg.to_uncertain().is_err());
        let mut mg2 = MultiGraph::new(1);
        mg2.add_edge(0, 0, 0.5);
        assert!(mg2.to_uncertain().is_err());
    }

    #[test]
    fn from_uncertain_preserves_everything() {
        let g = UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.6)]).unwrap();
        let mg = MultiGraph::from_uncertain(&g);
        assert_eq!(mg.num_edges(), 2);
        let g2 = mg.to_uncertain_dense().unwrap();
        assert_eq!(g2.num_vertices(), 3);
        assert_eq!(g2.num_edges(), 2);
    }
}
