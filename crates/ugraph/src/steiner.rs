//! Minimal terminal-spanning subtree of a forest.
//!
//! Within the contracted bridge forest, the minimum Steiner tree for the
//! terminal super-vertices is obtained by iteratively pruning non-terminal
//! leaves (the paper computes it "by a depth first search from a terminal";
//! leaf pruning is the equivalent linear-time formulation).

/// Result of Steiner pruning on a forest.
#[derive(Clone, Debug)]
pub struct SteinerTree {
    /// `keep_node[v]` — the node is on the minimal subtree spanning the
    /// terminals of its tree (terminal-free trees are pruned entirely).
    pub keep_node: Vec<bool>,
    /// Edge ids (as supplied in the adjacency) that lie on kept paths.
    pub keep_edge: Vec<usize>,
}

/// Prune non-terminal leaves of a forest until only the minimal subtrees
/// spanning the terminals remain.
///
/// `adj[v]` lists `(neighbor, edge_id)` pairs; the structure must be a forest
/// (this is asserted in debug builds via the handshake count). Edge ids may
/// be arbitrary distinct labels; kept ones are returned sorted.
pub fn steiner_subtree(adj: &[Vec<(usize, usize)>], is_terminal: &[bool]) -> SteinerTree {
    let n = adj.len();
    assert_eq!(is_terminal.len(), n);
    let mut deg: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    debug_assert!(
        deg.iter().sum::<usize>() / 2 < n.max(1),
        "input must be a forest"
    );
    let mut removed = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&v| deg[v] <= 1 && !is_terminal[v]).collect();
    while let Some(v) = queue.pop() {
        if removed[v] {
            continue;
        }
        removed[v] = true;
        for &(w, _) in &adj[v] {
            if !removed[w] {
                deg[w] -= 1;
                if deg[w] <= 1 && !is_terminal[w] {
                    queue.push(w);
                }
            }
        }
    }
    let keep_node: Vec<bool> = removed.iter().map(|&r| !r).collect();
    let mut keep_edge = Vec::new();
    for v in 0..n {
        if !keep_node[v] {
            continue;
        }
        for &(w, eid) in &adj[v] {
            if keep_node[w] && v < w {
                keep_edge.push(eid);
            } else if keep_node[w] && v == w {
                // self-loops cannot occur in a forest
                debug_assert!(false, "self-loop in forest");
            }
        }
    }
    keep_edge.sort_unstable();
    SteinerTree {
        keep_node,
        keep_edge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build adjacency from (u, v, edge_id) triples.
    fn adj_of(n: usize, edges: &[(usize, usize, usize)]) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v, id) in edges {
            adj[u].push((v, id));
            adj[v].push((u, id));
        }
        adj
    }

    #[test]
    fn path_with_terminal_endpoints() {
        // 0-1-2-3-4, terminals {0, 4}: everything kept.
        let adj = adj_of(5, &[(0, 1, 0), (1, 2, 1), (2, 3, 2), (3, 4, 3)]);
        let t = vec![true, false, false, false, true];
        let st = steiner_subtree(&adj, &t);
        assert!(st.keep_node.iter().all(|&k| k));
        assert_eq!(st.keep_edge, vec![0, 1, 2, 3]);
    }

    #[test]
    fn path_with_interior_terminals() {
        // 0-1-2-3-4, terminals {1, 3}: endpoints pruned.
        let adj = adj_of(5, &[(0, 1, 0), (1, 2, 1), (2, 3, 2), (3, 4, 3)]);
        let t = vec![false, true, false, true, false];
        let st = steiner_subtree(&adj, &t);
        assert_eq!(st.keep_node, vec![false, true, true, true, false]);
        assert_eq!(st.keep_edge, vec![1, 2]);
    }

    #[test]
    fn star_keeps_only_terminal_arms() {
        // Star: center 0, leaves 1..5; terminals {1, 2}.
        let adj = adj_of(
            6,
            &[(0, 1, 10), (0, 2, 20), (0, 3, 30), (0, 4, 40), (0, 5, 50)],
        );
        let t = vec![false, true, true, false, false, false];
        let st = steiner_subtree(&adj, &t);
        assert_eq!(st.keep_node, vec![true, true, true, false, false, false]);
        assert_eq!(st.keep_edge, vec![10, 20]);
    }

    #[test]
    fn single_terminal_keeps_just_it() {
        let adj = adj_of(4, &[(0, 1, 0), (1, 2, 1), (2, 3, 2)]);
        let t = vec![false, false, true, false];
        let st = steiner_subtree(&adj, &t);
        assert_eq!(st.keep_node, vec![false, false, true, false]);
        assert!(st.keep_edge.is_empty());
    }

    #[test]
    fn terminal_free_tree_fully_pruned() {
        let adj = adj_of(3, &[(0, 1, 0), (1, 2, 1)]);
        let t = vec![false, false, false];
        let st = steiner_subtree(&adj, &t);
        assert!(st.keep_node.iter().all(|&k| !k));
        assert!(st.keep_edge.is_empty());
    }

    #[test]
    fn forest_with_terminals_in_two_trees() {
        // Tree A: 0-1 (terminal 0); tree B: 2-3-4 (terminal 4).
        let adj = adj_of(5, &[(0, 1, 0), (2, 3, 1), (3, 4, 2)]);
        let t = vec![true, false, false, false, true];
        let st = steiner_subtree(&adj, &t);
        assert_eq!(st.keep_node, vec![true, false, false, false, true]);
        assert!(st.keep_edge.is_empty());
    }
}
