//! Possible-world sampling with early-exit terminal connectivity.
//!
//! This is the hot path of the Monte Carlo baseline (`Sampling(MC)` in the
//! paper, §3.2.2): draw each edge independently, union endpoints, and stop as
//! soon as all `k` terminals share a component. Early exit is unbiased — the
//! connectivity indicator does not depend on the undrawn edges.
//!
//! To avoid an `O(|V|)` reset per sample the union-find slots are versioned
//! with an epoch counter and lazily re-initialized on first access, so a
//! sample costs `O(|E| α(|V|))` regardless of `|V|`.

use crate::graph::{UncertainGraph, VertexId};
use rand::Rng;

#[derive(Clone, Copy, Debug)]
struct Slot {
    parent: u32,
    size: u32,
    tcount: u32,
    epoch: u32,
}

/// Reusable possible-world sampler for a fixed vertex-count budget.
#[derive(Clone, Debug)]
pub struct WorldSampler {
    slots: Vec<Slot>,
    epoch: u32,
}

impl WorldSampler {
    /// Sampler for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        WorldSampler {
            slots: vec![
                Slot {
                    parent: 0,
                    size: 0,
                    tcount: 0,
                    epoch: 0
                };
                n
            ],
            epoch: 0,
        }
    }

    #[inline]
    fn touch(&mut self, x: usize) {
        let s = &mut self.slots[x];
        if s.epoch != self.epoch {
            s.epoch = self.epoch;
            s.parent = x as u32;
            s.size = 1;
            s.tcount = 0;
        }
    }

    #[inline]
    fn find(&mut self, mut x: usize) -> usize {
        self.touch(x);
        loop {
            let p = self.slots[x].parent as usize;
            if p == x {
                return x;
            }
            let gp = self.slots[p].parent;
            self.slots[x].parent = gp;
            x = gp as usize;
        }
    }

    /// Start a fresh world; marks every slot stale in O(1).
    fn begin(&mut self, terminals: &[VertexId]) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: do one eager pass so stale epochs can't alias.
            for (i, s) in self.slots.iter_mut().enumerate() {
                *s = Slot {
                    parent: i as u32,
                    size: 1,
                    tcount: 0,
                    epoch: 0,
                };
            }
        }
        for &t in terminals {
            self.touch(t);
            self.slots[t].tcount = 1;
        }
        terminals.len() as u32
    }

    #[inline]
    fn union_count(&mut self, u: usize, v: usize) -> u32 {
        let mut ra = self.find(u);
        let mut rb = self.find(v);
        if ra == rb {
            return self.slots[ra].tcount;
        }
        if self.slots[ra].size < self.slots[rb].size {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.slots[rb].parent = ra as u32;
        self.slots[ra].size += self.slots[rb].size;
        self.slots[ra].tcount += self.slots[rb].tcount;
        self.slots[ra].tcount
    }

    /// Draw one possible world of `g` and report whether all `terminals` are
    /// connected in it. Exits early once connectivity is decided; the skipped
    /// edge draws do not bias the indicator.
    pub fn sample_connected<R: Rng + ?Sized>(
        &mut self,
        g: &UncertainGraph,
        terminals: &[VertexId],
        rng: &mut R,
    ) -> bool {
        let k = self.begin(terminals);
        if k <= 1 {
            return true;
        }
        for e in g.edges() {
            if rng.gen::<f64>() < e.p && self.union_count(e.u, e.v) == k {
                return true;
            }
        }
        false
    }

    /// Draw one *full* possible world (no early exit) and return
    /// `(connected, ln Pr[G_p], state_hash)`. Used by the Horvitz–Thompson
    /// estimator, which needs each sampled world's existence probability and
    /// an identity for without-replacement dedup.
    pub fn sample_world_full<R: Rng + ?Sized>(
        &mut self,
        g: &UncertainGraph,
        terminals: &[VertexId],
        rng: &mut R,
    ) -> (bool, f64, u64) {
        let k = self.begin(terminals);
        let mut connected_count = if k <= 1 { k } else { 0 };
        let mut ln_p = 0.0f64;
        // FNV-1a over the edge-state bitstring.
        let mut hash = 0xcbf29ce484222325u64;
        for e in g.edges() {
            let exists = rng.gen::<f64>() < e.p;
            hash ^= exists as u64 + 1;
            hash = hash.wrapping_mul(0x100000001b3);
            if exists {
                ln_p += e.p.ln();
                let c = self.union_count(e.u, e.v);
                connected_count = connected_count.max(c);
            } else {
                ln_p += (1.0 - e.p).ln();
            }
        }
        (k <= 1 || connected_count >= k, ln_p, hash)
    }
}

/// Reusable possible-world sampler for *hop-bounded* reachability: does the
/// sampled world contain an `s`–`t` path of at most `d` edges?
///
/// Unlike [`WorldSampler`], connectivity alone is not enough — the indicator
/// depends on path *length* — so each sample draws the full edge mask first
/// (every edge must be decided before the BFS; lazily drawing edges during
/// the traversal would draw an edge once per incidence and bias the world
/// distribution) and then runs a layered BFS truncated at depth `d`, with
/// early exit once `t` enters the frontier. Visited marks are
/// epoch-versioned, so a sample costs `O(|E| + |V_visited|)` with no
/// per-sample reset.
#[derive(Clone, Debug)]
pub struct HopSampler {
    present: Vec<bool>,
    visited: Vec<u32>,
    epoch: u32,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl HopSampler {
    /// Sampler for graphs with up to `n` vertices and `m` edges.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        HopSampler {
            present: vec![false; m],
            visited: vec![0; n],
            epoch: 0,
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: clear eagerly so stale epochs can't alias.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
    }

    /// Layered BFS from `s` over the currently drawn edge mask, truncated at
    /// `max_hops` levels. Returns whether `t` is reached within the bound.
    fn reaches_within(
        &mut self,
        g: &UncertainGraph,
        s: VertexId,
        t: VertexId,
        max_hops: u32,
    ) -> bool {
        if s == t {
            return true;
        }
        self.begin();
        self.visited[s] = self.epoch;
        self.frontier.clear();
        self.frontier.push(s as u32);
        for _ in 0..max_hops {
            self.next.clear();
            for fi in 0..self.frontier.len() {
                let v = self.frontier[fi] as usize;
                for &(w, e) in g.neighbors(v) {
                    if self.present[e] && self.visited[w] != self.epoch {
                        if w == t {
                            return true;
                        }
                        self.visited[w] = self.epoch;
                        self.next.push(w as u32);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            if self.frontier.is_empty() {
                return false;
            }
        }
        false
    }

    /// Draw one possible world of `g` and report whether it contains an
    /// `s`–`t` path of at most `max_hops` edges. Every edge is drawn (the
    /// hop-bounded indicator depends on the full mask), so the draw count
    /// per world is fixed at `|E|`.
    pub fn sample_within_hops<R: Rng + ?Sized>(
        &mut self,
        g: &UncertainGraph,
        s: VertexId,
        t: VertexId,
        max_hops: u32,
        rng: &mut R,
    ) -> bool {
        for (i, e) in g.edges().iter().enumerate() {
            self.present[i] = rng.gen::<f64>() < e.p;
        }
        self.reaches_within(g, s, t, max_hops)
    }

    /// Hop-bounded analogue of [`WorldSampler::sample_world_full`]: draw one
    /// full world and return `(reaches, ln Pr[G_p], state_hash)` for the
    /// Horvitz–Thompson estimator.
    pub fn sample_world_within_hops<R: Rng + ?Sized>(
        &mut self,
        g: &UncertainGraph,
        s: VertexId,
        t: VertexId,
        max_hops: u32,
        rng: &mut R,
    ) -> (bool, f64, u64) {
        let mut ln_p = 0.0f64;
        // FNV-1a over the edge-state bitstring, identical to the
        // connectivity sampler so world identities are comparable.
        let mut hash = 0xcbf29ce484222325u64;
        for (i, e) in g.edges().iter().enumerate() {
            let exists = rng.gen::<f64>() < e.p;
            self.present[i] = exists;
            hash ^= exists as u64 + 1;
            hash = hash.wrapping_mul(0x100000001b3);
            ln_p += if exists { e.p.ln() } else { (1.0 - e.p).ln() };
        }
        (self.reaches_within(g, s, t, max_hops), ln_p, hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path3() -> UncertainGraph {
        UncertainGraph::new(3, [(0, 1, 0.5), (1, 2, 0.5)]).unwrap()
    }

    #[test]
    fn deterministic_edges_deterministic_answer() {
        let g = UncertainGraph::new(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut s = WorldSampler::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(s.sample_connected(&g, &[0, 2], &mut rng));
        }
    }

    #[test]
    fn single_terminal_always_connected() {
        let g = path3();
        let mut s = WorldSampler::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(s.sample_connected(&g, &[1], &mut rng));
    }

    #[test]
    fn estimates_series_probability() {
        // Two edges in series with p = 0.5 each: R[0~2] = 0.25.
        let g = path3();
        let mut s = WorldSampler::new(3);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| s.sample_connected(&g, &[0, 2], &mut rng))
            .count();
        let est = hits as f64 / n as f64;
        assert!((est - 0.25).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn full_world_prob_is_consistent() {
        let g = path3();
        let mut s = WorldSampler::new(3);
        let mut rng = StdRng::seed_from_u64(7);
        // All worlds of this graph have probability 0.25 (0.5 * 0.5).
        for _ in 0..20 {
            let (_, lnp, _) = s.sample_world_full(&g, &[0, 2], &mut rng);
            assert!((lnp - 0.25f64.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn full_world_hash_distinguishes_states() {
        let g = path3();
        let mut s = WorldSampler::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hashes = std::collections::HashSet::new();
        for _ in 0..200 {
            let (_, _, h) = s.sample_world_full(&g, &[0, 2], &mut rng);
            hashes.insert(h);
        }
        // 2 edges → 4 distinct worlds.
        assert_eq!(hashes.len(), 4);
    }

    #[test]
    fn hop_sampler_depth_bound_is_sharp() {
        // Deterministic path 0-1-2: 0 reaches 2 within 2 hops, never within 1.
        let g = UncertainGraph::new(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut hs = HopSampler::new(3, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert!(hs.sample_within_hops(&g, 0, 2, 2, &mut rng));
            assert!(!hs.sample_within_hops(&g, 0, 2, 1, &mut rng));
            assert!(hs.sample_within_hops(&g, 0, 0, 0, &mut rng), "s == t");
        }
    }

    #[test]
    fn hop_sampler_estimates_bounded_path_probability() {
        // Square 0-1-2-3-0 with a chord 0-2: within 1 hop only the chord
        // counts (p = 0.3); within 2 hops the two 2-edge paths join in.
        let g = UncertainGraph::new(
            4,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
                (3, 0, 0.5),
                (0, 2, 0.3),
            ],
        )
        .unwrap();
        let mut hs = HopSampler::new(4, 5);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let hits1 = (0..n)
            .filter(|_| hs.sample_within_hops(&g, 0, 2, 1, &mut rng))
            .count();
        assert!((hits1 as f64 / n as f64 - 0.3).abs() < 0.01);
        let truth2 = 1.0 - (1.0 - 0.3f64) * (1.0 - 0.25) * (1.0 - 0.25);
        let hits2 = (0..n)
            .filter(|_| hs.sample_within_hops(&g, 0, 2, 2, &mut rng))
            .count();
        assert!((hits2 as f64 / n as f64 - truth2).abs() < 0.01);
    }

    #[test]
    fn hop_sampler_full_world_matches_quick_path() {
        let g = path3();
        let mut a = HopSampler::new(3, 2);
        let mut b = HopSampler::new(3, 2);
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let quick = a.sample_within_hops(&g, 0, 2, 2, &mut rng_a);
            let (full, lnp, _) = b.sample_world_within_hops(&g, 0, 2, 2, &mut rng_b);
            assert_eq!(quick, full, "same seed, same worlds, same indicator");
            assert!((lnp - 0.25f64.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn epoch_reuse_is_clean() {
        // A world where the terminals connect must not leak into the next.
        let g = UncertainGraph::new(2, [(0, 1, 0.5)]).unwrap();
        let mut s = WorldSampler::new(2);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| s.sample_connected(&g, &[0, 1], &mut rng))
            .count();
        let est = hits as f64 / n as f64;
        assert!((est - 0.5).abs() < 0.01, "estimate {est}");
    }
}
