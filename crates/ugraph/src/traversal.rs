//! Breadth-first traversal helpers.

use crate::graph::{UncertainGraph, VertexId};

/// Vertices reachable from `start` (including `start`), in BFS order.
pub fn connected_component(g: &UncertainGraph, start: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        out.push(v);
        for &(w, _) in g.neighbors(v) {
            if !seen[w] {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    out
}

/// Hop distance from `start` to every vertex (`0` for `start` itself,
/// `u32::MAX` for unreachable vertices), ignoring edge probabilities.
/// Used by distance-constrained (d-hop) semantics to prune vertices that
/// cannot lie on any sufficiently short path.
pub fn bfs_distances(g: &UncertainGraph, start: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &(w, _) in g.neighbors(v) {
            if dist[w] == u32::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Component id per vertex (`0..k` for `k` components) and the component count.
pub fn connected_components(g: &UncertainGraph) -> (Vec<usize>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &(w, _) in g.neighbors(v) {
                if comp[w] == usize::MAX {
                    comp[w] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Whether all `terminals` lie in one component of `g` (ignoring
/// probabilities). Terminal sets of size 0 or 1 are vacuously connected.
pub fn terminals_connected_certain(g: &UncertainGraph, terminals: &[VertexId]) -> bool {
    match terminals {
        [] | [_] => true,
        [first, rest @ ..] => {
            let comp = connected_component(g, *first);
            let mut mask = vec![false; g.num_vertices()];
            for v in comp {
                mask[v] = true;
            }
            rest.iter().all(|&t| mask[t])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UncertainGraph;

    fn two_triangles() -> UncertainGraph {
        UncertainGraph::new(
            6,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (0, 2, 0.5),
                (3, 4, 0.5),
                (4, 5, 0.5),
                (3, 5, 0.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn component_from_start() {
        let g = two_triangles();
        let mut c = connected_component(&g, 1);
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn component_ids() {
        let g = two_triangles();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn terminal_connectivity() {
        let g = two_triangles();
        assert!(terminals_connected_certain(&g, &[0, 1, 2]));
        assert!(!terminals_connected_certain(&g, &[0, 3]));
        assert!(terminals_connected_certain(&g, &[4]));
        assert!(terminals_connected_certain(&g, &[]));
    }
}
