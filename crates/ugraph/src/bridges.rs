//! Bridges and articulation points via an iterative Tarjan lowlink DFS.
//!
//! The recursion is made explicit because road-network datasets contain DFS
//! paths hundreds of thousands of vertices deep.

use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// Bridges and articulation points of a graph (paper Definition 3).
#[derive(Clone, Debug)]
pub struct CutStructure {
    /// `is_bridge[e]` — removing edge `e` disconnects its endpoints.
    pub is_bridge: Vec<bool>,
    /// `is_articulation[v]` — removing vertex `v` increases the number of
    /// connected components.
    pub is_articulation: Vec<bool>,
    /// Bridge edge ids in ascending order.
    pub bridge_ids: Vec<EdgeId>,
}

/// Compute bridges and articulation points in `O(|V| + |E|)`.
pub fn cut_structure(g: &UncertainGraph) -> CutStructure {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut is_bridge = vec![false; m];
    let mut is_articulation = vec![false; n];
    let mut timer = 0u32;
    // Frame: (vertex, parent edge id or usize::MAX, next adjacency index).
    let mut stack: Vec<(VertexId, usize, usize)> = Vec::new();

    for root in 0..n {
        if disc[root] != u32::MAX {
            continue;
        }
        let mut root_children = 0usize;
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, usize::MAX, 0));
        while let Some(top) = stack.last_mut() {
            let (v, pe, i) = (top.0, top.1, top.2);
            if i < g.degree(v) {
                top.2 += 1;
                let (w, eid) = g.neighbors(v)[i];
                if eid == pe {
                    continue; // don't walk back over the tree edge itself
                }
                if disc[w] == u32::MAX {
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, eid, 0));
                } else {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(parent) = stack.last() {
                    let u = parent.0;
                    low[u] = low[u].min(low[v]);
                    if low[v] > disc[u] {
                        is_bridge[pe] = true;
                    }
                    if u != root && low[v] >= disc[u] {
                        is_articulation[u] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_articulation[root] = true;
        }
    }

    let bridge_ids = (0..m).filter(|&e| is_bridge[e]).collect();
    CutStructure {
        is_bridge,
        is_articulation,
        bridge_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;
    use proptest::prelude::*;

    /// Oracle: e is a bridge iff deleting it splits the component count.
    fn bridge_oracle(g: &UncertainGraph) -> Vec<bool> {
        let (_, base) = connected_components(g);
        (0..g.num_edges())
            .map(|skip| {
                let edge_list: Vec<_> = g
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, e)| (e.u, e.v, e.p))
                    .collect();
                let h = UncertainGraph::new(g.num_vertices(), edge_list).unwrap();
                let (_, k) = connected_components(&h);
                k > base
            })
            .collect()
    }

    /// Oracle: v is an articulation point iff removing it increases the
    /// number of components among the remaining vertices.
    fn articulation_oracle(g: &UncertainGraph) -> Vec<bool> {
        let n = g.num_vertices();
        (0..n)
            .map(|cut| {
                let mut keep = vec![true; n];
                keep[cut] = false;
                let (sub, _) = g.induced_subgraph(&keep);
                let (_, k_after) = connected_components(&sub);
                // Components among vertices != cut before removal:
                let (comp, _) = connected_components(g);
                let mut reps = std::collections::HashSet::new();
                for (v, &c) in comp.iter().enumerate().take(n) {
                    if v != cut {
                        reps.insert(c);
                    }
                }
                k_after > reps.len()
            })
            .collect()
    }

    fn path_graph(n: usize) -> UncertainGraph {
        UncertainGraph::new(n, (0..n - 1).map(|i| (i, i + 1, 0.5))).unwrap()
    }

    #[test]
    fn path_all_bridges() {
        let g = path_graph(5);
        let cs = cut_structure(&g);
        assert!(cs.is_bridge.iter().all(|&b| b));
        assert_eq!(cs.bridge_ids, vec![0, 1, 2, 3]);
        // Inner vertices are articulation points; endpoints are not.
        assert_eq!(cs.is_articulation, vec![false, true, true, true, false]);
    }

    #[test]
    fn cycle_no_bridges() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 0, 0.5)]).unwrap();
        let cs = cut_structure(&g);
        assert!(cs.bridge_ids.is_empty());
        assert!(cs.is_articulation.iter().all(|&a| !a));
    }

    #[test]
    fn barbell() {
        // Two triangles joined by one bridge (2-5).
        let g = UncertainGraph::new(
            6,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (0, 2, 0.5),
                (3, 4, 0.5),
                (4, 5, 0.5),
                (3, 5, 0.5),
                (2, 5, 0.9),
            ],
        )
        .unwrap();
        let cs = cut_structure(&g);
        assert_eq!(cs.bridge_ids, vec![6]);
        assert!(cs.is_articulation[2]);
        assert!(cs.is_articulation[5]);
        assert_eq!(cs.is_articulation.iter().filter(|&&a| a).count(), 2);
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = UncertainGraph::new(5, [(0, 1, 0.5), (2, 3, 0.5), (3, 4, 0.5)]).unwrap();
        let cs = cut_structure(&g);
        assert_eq!(cs.bridge_ids, vec![0, 1, 2]);
        assert!(cs.is_articulation[3]);
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        let g = path_graph(200_000);
        let cs = cut_structure(&g);
        assert_eq!(cs.bridge_ids.len(), 199_999);
    }

    proptest! {
        #[test]
        fn matches_oracles(edges in proptest::collection::vec((0usize..8, 0usize..8), 1..16)) {
            let mut seen = std::collections::HashSet::new();
            let list: Vec<(usize, usize, f64)> = edges
                .into_iter()
                .filter_map(|(u, v)| {
                    if u == v { return None; }
                    let key = (u.min(v), u.max(v));
                    if seen.insert(key) { Some((key.0, key.1, 0.5)) } else { None }
                })
                .collect();
            prop_assume!(!list.is_empty());
            let g = UncertainGraph::new(8, list).unwrap();
            let cs = cut_structure(&g);
            prop_assert_eq!(&cs.is_bridge, &bridge_oracle(&g));
            prop_assert_eq!(&cs.is_articulation, &articulation_oracle(&g));
        }
    }
}
