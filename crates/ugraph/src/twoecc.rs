//! 2-edge-connected components and the contracted bridge forest.
//!
//! The preprocessing extension (paper §5) contracts every 2-edge-connected
//! component to a super vertex; the bridges then form a forest over the super
//! vertices (a tree when the input is connected), on which the minimal
//! Steiner subtree identifies the vertices and edges relevant to reliability.

use crate::bridges::CutStructure;
use crate::graph::{EdgeId, UncertainGraph, VertexId};

/// 2-edge-connected component labelling.
#[derive(Clone, Debug)]
pub struct TwoEcc {
    /// `comp[v]` — the 2ECC id of vertex `v` (dense `0..num_comps`).
    pub comp: Vec<usize>,
    /// Number of 2ECCs.
    pub num_comps: usize,
}

/// Label 2-edge-connected components: connected components of the graph with
/// all bridges removed.
pub fn two_edge_connected_components(g: &UncertainGraph, cut: &CutStructure) -> TwoEcc {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &(w, eid) in g.neighbors(v) {
                if !cut.is_bridge[eid] && comp[w] == usize::MAX {
                    comp[w] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    TwoEcc {
        comp,
        num_comps: next,
    }
}

/// The graph obtained by contracting each 2ECC into one super vertex; the
/// remaining edges are exactly the bridges, so the result is a forest.
#[derive(Clone, Debug)]
pub struct BridgeForest {
    /// Number of super vertices (= number of 2ECCs).
    pub num_nodes: usize,
    /// Adjacency: for each super vertex, `(neighbor super vertex, bridge edge id)`.
    pub adj: Vec<Vec<(usize, EdgeId)>>,
    /// `node_terminal[c]` — the super vertex contains at least one terminal.
    pub node_terminal: Vec<bool>,
}

impl BridgeForest {
    /// Build the contracted forest. `terminals` marks which original vertices
    /// are terminals; a super vertex is a terminal iff it contains one
    /// (paper §5, Prune).
    pub fn build(
        g: &UncertainGraph,
        cut: &CutStructure,
        ecc: &TwoEcc,
        terminals: &[VertexId],
    ) -> Self {
        let mut adj = vec![Vec::new(); ecc.num_comps];
        for &eid in &cut.bridge_ids {
            let e = g.edge(eid);
            let (a, b) = (ecc.comp[e.u], ecc.comp[e.v]);
            debug_assert_ne!(a, b, "a bridge cannot be internal to a 2ECC");
            adj[a].push((b, eid));
            adj[b].push((a, eid));
        }
        let mut node_terminal = vec![false; ecc.num_comps];
        for &t in terminals {
            node_terminal[ecc.comp[t]] = true;
        }
        BridgeForest {
            num_nodes: ecc.num_comps,
            adj,
            node_terminal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridges::cut_structure;

    /// Two triangles joined by a bridge, plus a pendant path.
    ///   0-1-2 triangle — bridge (2,3) — 3-4-5 triangle — pendant 5-6-7
    fn lollipop() -> UncertainGraph {
        UncertainGraph::new(
            8,
            [
                (0, 1, 0.5),
                (1, 2, 0.5),
                (0, 2, 0.5),
                (2, 3, 0.5),
                (3, 4, 0.5),
                (4, 5, 0.5),
                (3, 5, 0.5),
                (5, 6, 0.5),
                (6, 7, 0.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn labels_components() {
        let g = lollipop();
        let cut = cut_structure(&g);
        let ecc = two_edge_connected_components(&g, &cut);
        // Components: {0,1,2}, {3,4,5}, {6}, {7}.
        assert_eq!(ecc.num_comps, 4);
        assert_eq!(ecc.comp[0], ecc.comp[1]);
        assert_eq!(ecc.comp[1], ecc.comp[2]);
        assert_eq!(ecc.comp[3], ecc.comp[4]);
        assert_eq!(ecc.comp[4], ecc.comp[5]);
        assert_ne!(ecc.comp[0], ecc.comp[3]);
        assert_ne!(ecc.comp[5], ecc.comp[6]);
        assert_ne!(ecc.comp[6], ecc.comp[7]);
    }

    #[test]
    fn forest_structure() {
        let g = lollipop();
        let cut = cut_structure(&g);
        let ecc = two_edge_connected_components(&g, &cut);
        let forest = BridgeForest::build(&g, &cut, &ecc, &[0, 4]);
        assert_eq!(forest.num_nodes, 4);
        // Forest edge count = bridge count = 3; tree over 4 nodes.
        let deg_sum: usize = forest.adj.iter().map(|a| a.len()).sum();
        assert_eq!(deg_sum, 2 * 3);
        assert!(forest.node_terminal[ecc.comp[0]]);
        assert!(forest.node_terminal[ecc.comp[4]]);
        assert!(!forest.node_terminal[ecc.comp[6]]);
    }

    #[test]
    fn single_2ecc_graph() {
        let g =
            UncertainGraph::new(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 0, 0.5)]).unwrap();
        let cut = cut_structure(&g);
        let ecc = two_edge_connected_components(&g, &cut);
        assert_eq!(ecc.num_comps, 1);
        let forest = BridgeForest::build(&g, &cut, &ecc, &[1]);
        assert_eq!(forest.num_nodes, 1);
        assert!(forest.adj[0].is_empty());
    }
}
