//! Protein-complex reliability (the paper's §1 motivating application).
//!
//! Protein–protein interaction networks are uncertain: an interaction is
//! observed with a confidence score, not a certainty. Analysts ask how
//! likely a *set* of proteins is to form a connected module — exactly the
//! k-terminal reliability of the score-weighted interaction graph.
//!
//! This example generates a Hit-direct-like synthetic PPI network, picks
//! candidate complexes of increasing size, and ranks them by reliability,
//! comparing the paper's approach against flat Monte Carlo at equal sample
//! budgets.
//!
//! Run with: `cargo run --release --example protein_complex`

use network_reliability::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // A scaled-down protein-interaction network (≈ 550 proteins, avg degree
    // ≈ 27 like the paper's Hit-direct dataset).
    let g = Dataset::HitD.generate(0.03, 7);
    let stats = GraphStats::compute(&g);
    println!("synthetic PPI network: {stats}\n");

    let mut rng = StdRng::seed_from_u64(99);
    println!(
        "{:<28} {:>4} {:>12} {:>12} {:>10} {:>10}",
        "candidate complex", "k", "Pro R^", "MC R^", "Pro ms", "MC ms"
    );

    for k in [3usize, 5, 8] {
        // Candidate module: a random protein plus nearby interactors.
        let seedp = rng.gen_range(0..g.num_vertices());
        let mut members = vec![seedp];
        let mut cursor = 0;
        while members.len() < k && cursor < members.len() {
            let v = members[cursor];
            cursor += 1;
            for &(w, _) in g.neighbors(v) {
                if members.len() < k && !members.contains(&w) {
                    members.push(w);
                }
            }
        }
        if members.len() < k {
            continue;
        }

        let t0 = Instant::now();
        let pro = pro_reliability(
            &g,
            &members,
            ProConfig {
                s2bdd: S2BddConfig {
                    samples: 2_000,
                    max_width: 2_000,
                    seed: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let pro_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let mc = sample_reliability(
            &g,
            &members,
            SamplingConfig {
                samples: 2_000,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let mc_ms = t1.elapsed().as_secs_f64() * 1e3;

        let label: Vec<String> = members.iter().take(4).map(|v| format!("p{v}")).collect();
        println!(
            "{:<28} {:>4} {:>12.5} {:>12.5} {:>10.1} {:>10.1}",
            format!("{{{}, …}}", label.join(", ")),
            k,
            pro.estimate,
            mc.estimate,
            pro_ms,
            mc_ms
        );
        println!(
            "{:<28} {:>4} proven bounds [{:.5}, {:.5}]  samples used {} / {}",
            "", "", pro.lower_bound, pro.upper_bound, pro.samples_used, 2_000
        );
    }

    println!(
        "\nInterpretation: high-reliability candidate complexes are likelier to\n\
         be real functional modules; the S2BDD bounds show how much of the\n\
         answer was *proven* rather than sampled."
    );
}
