//! Batched multi-query reliability with `netrel-engine`: register a graph
//! once, answer a stream of overlapping terminal-pair queries through shared
//! preprocessing and the part-level plan cache, and compare against
//! independent one-shot `pro_reliability` calls.
//!
//! Run with: `cargo run --release --example batch_queries`

use network_reliability::prelude::*;
use network_reliability::solvers::pro_reliability;
use network_reliability::solvers::ProConfig;
use std::time::Instant;

fn main() {
    // A Tokyo-like road network: tree-like after 2ECC contraction, so the
    // terminal-independent structure pass dominates a one-shot query.
    let g = Dataset::Tokyo.generate(0.05, 7);
    println!(
        "graph: Tokyo-like, {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // A hot-pair workload: 60 queries cycling over 6 terminal pairs, the
    // access pattern of s-t benchmark suites and perturbation search.
    // Nearby pairs keep the reliabilities non-vanishing (on a road network,
    // far-apart terminals are almost never connected). The generator lays
    // vertices out row-major on a ~√n × √n grid, so `v` and `v + side` are
    // vertical neighbors.
    let side = (g.num_vertices() as f64).sqrt() as usize;
    let pairs: [[usize; 2]; 6] = [
        [0, 1],
        [side, side + 1],
        [0, 3 * side + 3], // a few blocks apart: leaves parts for the solver
        [0, 1],            // duplicates on purpose: they hit the plan cache
        [0, 3 * side + 3],
        [side, side + 1],
    ];
    // A demo-sized solver budget (the paper default of w = s = 10 000 makes
    // each medium-range query a multi-second solve).
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            max_width: 64,
            samples: 2_000,
            seed: 7,
            ..Default::default()
        },
        ..Default::default()
    };
    let queries: Vec<ReliabilityQuery> = (0..60)
        .map(|i| ReliabilityQuery::with_config(pairs[i % pairs.len()].to_vec(), cfg))
        .collect();

    // One-shot: every call redoes bridges + 2ECC + forest from scratch.
    let t0 = Instant::now();
    let solo: Vec<f64> = queries
        .iter()
        .map(|q| {
            pro_reliability(&g, &q.terminals, q.config)
                .unwrap()
                .estimate
        })
        .collect();
    let oneshot = t0.elapsed();

    // Engine: structure once at register time, then batched answering with
    // the part-level plan cache (here in service-sized batches of 10).
    let t1 = Instant::now();
    let mut engine = Engine::new(EngineConfig::default());
    let id = engine.register("tokyo", g.clone());
    let mut answers: Vec<QueryAnswer> = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(10) {
        for a in engine.run_batch(id, chunk).unwrap() {
            answers.push(a.unwrap());
        }
    }
    let batched = t1.elapsed();

    for (a, s) in answers.iter().zip(&solo) {
        assert_eq!(
            a.estimate.to_bits(),
            s.to_bits(),
            "engine answers are bit-identical to one-shot Pro"
        );
    }

    let stats = engine.cache_stats();
    println!(
        "60 queries  one-shot: {:>8.1?}   engine: {:>8.1?}   speedup: {:.1}x",
        oneshot,
        batched,
        oneshot.as_secs_f64() / batched.as_secs_f64().max(1e-9)
    );
    println!(
        "plan cache: {} hits, {} misses, {} entries",
        stats.hits, stats.misses, stats.entries
    );
    let sample = &answers[0];
    println!(
        "R[{:?}] = {:.6} in [{:.6}, {:.6}]{}",
        queries[0].terminals,
        sample.estimate,
        sample.lower_bound,
        sample.upper_bound,
        if sample.exact { " (exact)" } else { "" }
    );
}
