//! Exact vs. approximate: watch the bounds tighten and the sample budget
//! shrink as the S2BDD width grows (the mechanism behind the paper's
//! Theorems 1–2 and Figure 5).
//!
//! Run with: `cargo run --release --example exact_vs_approx`

use network_reliability::datasets::karate::karate;
use network_reliability::prelude::*;

fn main() {
    // The paper's accuracy dataset: the Zachary karate club with uniformly
    // random edge probabilities.
    let g = karate(2024);
    let terminals = vec![0, 16, 25, 33, 5];
    println!(
        "graph: {} (k = {})\n",
        GraphStats::compute(&g),
        terminals.len()
    );

    let exact = exact_reliability(&g, &terminals).unwrap();
    println!("exact reliability R = {exact:.6}\n");

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "width w", "R^", "lower", "upper", "gap", "s' final", "deleted"
    );
    for w in [1usize, 4, 16, 64, 256, 1024, 4096] {
        let r = S2Bdd::solve(
            &g,
            &terminals,
            S2BddConfig {
                max_width: w,
                samples: 20_000,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "{:>8} {:>12.6} {:>12.6} {:>12.6} {:>10.2e} {:>10} {:>8}",
            w,
            r.estimate,
            r.lower_bound,
            r.upper_bound,
            r.bound_gap(),
            r.s_prime_final,
            r.deleted_nodes
        );
        assert!(r.lower_bound <= exact + 1e-12 && exact <= r.upper_bound + 1e-12);
    }

    println!(
        "\nAs w grows the S2BDD resolves more mass exactly: the proven interval\n\
         [p_c, 1-p_d] collapses onto R, the reduced budget s' falls (Theorem 1),\n\
         and at sufficient width no node is deleted at all — the answer is exact."
    );

    // And the estimator comparison of the paper's Tables 3–4.
    println!("\nestimators at w = 16, s = 20000:");
    for (name, est) in [
        ("Monte Carlo", EstimatorKind::MonteCarlo),
        ("Horvitz-Thompson", EstimatorKind::HorvitzThompson),
    ] {
        let r = S2Bdd::solve(
            &g,
            &terminals,
            S2BddConfig {
                max_width: 16,
                samples: 20_000,
                estimator: est,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "  {:<18} R^ = {:.6}   |error| = {:.6}",
            name,
            r.estimate,
            (r.estimate - exact).abs()
        );
    }
}
