//! A tour of the pluggable reliability semantics: one uncertain graph, five
//! questions — k-terminal, strict two-terminal, all-terminal, hop-bounded
//! (d-hop), and expected reachable-set size — all answered through the same
//! engine, each checked against the brute-force possible-world oracle.
//!
//! Run with: `cargo run --release --example semantics_tour`

use network_reliability::prelude::*;
use network_reliability::solvers::{oracle_value, ProConfig, SemanticsSpec};

fn main() {
    // Two triangles joined by a bridge, plus a dangling tail — small enough
    // (8 edges) for the exhaustive 2^|E| oracle, rich enough to exercise
    // pruning, bridge decomposition, and hop bounds.
    let g = UncertainGraph::new(
        7,
        [
            (0, 1, 0.7),
            (1, 2, 0.8),
            (0, 2, 0.9),
            (2, 3, 0.6),
            (3, 4, 0.7),
            (4, 5, 0.8),
            (3, 5, 0.9),
            (5, 6, 0.5),
        ],
    )
    .unwrap();

    let mut engine = Engine::new(EngineConfig::default());
    let id = engine.register("tour", g.clone());

    let cases: Vec<(SemanticsSpec, Vec<usize>, &str)> = vec![
        (
            SemanticsSpec::KTerminal,
            vec![0, 4, 6],
            "P[0, 4, 6 all connected]",
        ),
        (SemanticsSpec::TwoTerminal, vec![0, 6], "P[0 ~ 6]"),
        (SemanticsSpec::AllTerminal, vec![], "P[graph connected]"),
        (
            SemanticsSpec::DHop { d: 4 },
            vec![0, 6],
            "P[0 ~ 6 within 4 hops]",
        ),
        (SemanticsSpec::ReachSet, vec![0], "E[|reachable from 0|]"),
    ];

    println!(
        "fixture: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );
    for (spec, terminals, what) in cases {
        let q = ReliabilityQuery::with_semantics(spec, terminals.clone(), ProConfig::default());
        let a = engine.run(id, &q).unwrap();
        let truth = oracle_value(&g, spec, &terminals).unwrap();
        assert!(
            (a.estimate - truth).abs() < 1e-9,
            "{spec:?}: engine answered {} but the oracle says {truth}",
            a.estimate
        );
        println!(
            "{:12}  {:26}  = {:.6}  (oracle {:.6}{})",
            spec.name(),
            what,
            a.estimate,
            truth,
            if a.exact { ", exact" } else { "" }
        );
    }

    // The adaptive planner routes per part and per semantics: on a complete
    // graph at d = 2 nothing is prunable, the single d-hop part stays far
    // above the exact-enumeration limit, and the planner falls back to
    // hop-bounded sampling with a confidence interval.
    let dense = network_reliability::datasets::clique_uniform(30, 0.3);
    let did = engine.register("dense", dense);
    let q = PlannedQuery::with_semantics(
        SemanticsSpec::DHop { d: 2 },
        vec![0, 29],
        ProConfig::default(),
        PlanBudget::default(),
    );
    let a = engine.run_planned(did, &q).unwrap();
    assert!(!a.exact && a.samples_used > 0);
    assert!(a.ci.contains(a.estimate));
    println!(
        "\nplanned d-hop on K30 (d = 2): {:.4} in CI [{:.4}, {:.4}] via {:?} ({} samples)",
        a.estimate, a.ci.lower, a.ci.upper, a.routes, a.samples_used
    );
}
