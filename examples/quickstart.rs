//! Quickstart: build an uncertain graph, compute its k-terminal reliability
//! three ways (exact, paper's approach, Monte Carlo baseline), and inspect
//! the proven bounds.
//!
//! Run with: `cargo run --release --example quickstart`

use network_reliability::prelude::*;

fn main() {
    // A small communication network: 8 routers, links fail independently.
    //
    //   0 --- 1 --- 2
    //   |  X  |     |      (0-1-4-3 form a dense core; 2, 5..7 hang off it)
    //   3 --- 4 --- 5 --- 6 --- 7
    let g = UncertainGraph::new(
        8,
        [
            (0, 1, 0.95),
            (1, 2, 0.80),
            (0, 3, 0.90),
            (1, 4, 0.85),
            (0, 4, 0.70),
            (1, 3, 0.75),
            (3, 4, 0.95),
            (2, 5, 0.60),
            (4, 5, 0.90),
            (5, 6, 0.99),
            (6, 7, 0.97),
        ],
    )
    .expect("valid edge list");

    // Which three routers must stay mutually reachable?
    let terminals = [0, 2, 7];

    // 1. Exact answer (preprocessing + unbounded-width S2BDD).
    let exact = exact_reliability(&g, &terminals).expect("valid terminals");
    println!("exact reliability            R  = {exact:.6}");

    // 2. The paper's approach: width-bounded S2BDD with stratified sampling.
    //    On a graph this small it is exact too — bounds collapse to a point.
    let pro = pro_reliability(&g, &terminals, ProConfig::paper_default(42)).unwrap();
    println!(
        "Pro (w=10000, s=10000)        R^ = {:.6}   bounds [{:.6}, {:.6}]{}",
        pro.estimate,
        pro.lower_bound,
        pro.upper_bound,
        if pro.exact { "  (exact)" } else { "" }
    );

    // 3. Classic Monte Carlo sampling, for comparison.
    let mc = sample_reliability(
        &g,
        &terminals,
        SamplingConfig {
            samples: 100_000,
            seed: 42,
            ..Default::default()
        },
    )
    .unwrap();
    println!(
        "Sampling(MC), s=100000        R^ = {:.6}   (± {:.6} std dev)",
        mc.estimate,
        mc.variance_estimate.sqrt()
    );

    // A tight S2BDD width forces deletion + stratified sampling; the bounds
    // stay proven and the estimate stays inside them.
    let tight = pro_reliability(
        &g,
        &terminals,
        ProConfig {
            s2bdd: S2BddConfig {
                max_width: 2,
                samples: 50_000,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    println!(
        "Pro (w=2, s=50000)            R^ = {:.6}   bounds [{:.6}, {:.6}]  samples used: {}",
        tight.estimate, tight.lower_bound, tight.upper_bound, tight.samples_used
    );

    assert!(tight.lower_bound <= exact && exact <= tight.upper_bound);
    println!("\nall three agree with the exact value within sampling error");
}
