//! Road-network resilience (the paper's urban-planning application, §1).
//!
//! Model a city road grid as an uncertain graph where each segment survives
//! a disruption (flood, congestion collapse) independently, and ask: how
//! reliably do the hospital, the depot, and the shelter stay mutually
//! reachable? Planners compare reinforcement strategies by their effect on
//! the k-terminal reliability.
//!
//! This example demonstrates the extension technique's leverage on
//! road-like graphs (Table 5 reports Tokyo shrinking to 42% and NYC to 28%
//! of the original edges) and uses the exact solver made feasible by it.
//!
//! Run with: `cargo run --release --example road_resilience`

use network_reliability::prelude::*;
use network_reliability::preprocessing::{preprocess, PreprocessConfig};
use std::time::Instant;

fn main() {
    // A Tokyo-like road grid, scaled to ~1300 intersections. The dataset's
    // native probabilities model long-run availability (avg ≈ 0.4), which
    // is the paper's regime; for a single-event disruption analysis we map
    // them onto per-segment storm-survival odds of 90–99.9%.
    let topo = Dataset::Tokyo.generate(0.05, 11);
    let g = UncertainGraph::new(
        topo.num_vertices(),
        topo.edges().iter().map(|e| (e.u, e.v, 0.90 + 0.099 * e.p)),
    )
    .expect("remapped probabilities stay in (0, 1]");
    let stats = GraphStats::compute(&g);
    println!("road network: {stats}");

    // Hospital, depot, shelter: a few blocks apart in the same district
    // (city-scale terminal sets on a lossy grid have reliability ~0; the
    // interesting planning question is district-scale).
    let n = g.num_vertices();
    let side = (n as f64).sqrt() as usize;
    let center = side * (side / 2) + side / 2;
    let terminals = vec![center, center + 2, center + 2 * side + 1];
    println!("terminals (hospital/depot/shelter): {terminals:?}\n");

    // How much does the extension technique shrink the problem?
    let t0 = Instant::now();
    let pre = preprocess(&g, &terminals, PreprocessConfig::default()).unwrap();
    let pre_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "extension technique: {} edges -> {} parts, largest {} edges \
         (ratio {:.3}) in {:.2} ms",
        pre.stats.original_edges,
        pre.stats.num_parts,
        pre.stats.max_part_edges,
        pre.stats.reduced_ratio,
        pre_ms
    );

    // Baseline reliability with the paper's approach.
    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            samples: 5_000,
            max_width: 5_000,
            seed: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let t1 = Instant::now();
    let base = pro_reliability(&g, &terminals, cfg).unwrap();
    let base_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nbaseline reliability: R^ = {:.4} in [{:.4}, {:.4}]{} ({:.1} ms)\n",
        base.estimate,
        base.lower_bound,
        base.upper_bound,
        if base.exact { " exact" } else { "" },
        base_ms
    );

    // Reinforcement strategy: upgrade the 10 most failure-prone segments on
    // the pruned core (raise survival probability to 0.99) and re-evaluate.
    let mut ranked: Vec<(usize, f64)> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (i, e.p))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let upgrades: Vec<usize> = ranked.iter().take(10).map(|&(i, _)| i).collect();
    let reinforced = UncertainGraph::new(
        g.num_vertices(),
        g.edges().iter().enumerate().map(|(i, e)| {
            let p = if upgrades.contains(&i) { 0.99 } else { e.p };
            (e.u, e.v, p)
        }),
    )
    .unwrap();
    let after = pro_reliability(&reinforced, &terminals, cfg).unwrap();
    println!(
        "after reinforcing 10 weakest segments: R^ = {:.4} in [{:.4}, {:.4}]",
        after.estimate, after.lower_bound, after.upper_bound
    );
    println!(
        "reliability gain: {:+.4} ({:+.1}%)",
        after.estimate - base.estimate,
        100.0 * (after.estimate - base.estimate) / base.estimate.max(1e-12)
    );
}
