//! Reliability search (the paper's §2 "other problems" application, after
//! Khan et al.): given a query vertex and a threshold η, find the vertices
//! whose two-terminal reliability from the query is at least η.
//!
//! The naive algorithm runs one Monte Carlo estimation per candidate; this
//! example uses the library's `Pro` solver instead and exploits its *proven*
//! bounds: a candidate whose upper bound falls below η is rejected without
//! sampling, and one whose lower bound clears η is accepted without
//! sampling — the paper's bounds double as a classifier.
//!
//! Run with: `cargo run --release --example reliability_search`

use network_reliability::prelude::*;
use std::time::Instant;

fn main() {
    // A DBLP-like collaboration graph: "which researchers are reliably
    // connected to the query author through active collaborations?"
    let g = Dataset::Dblp1.generate(0.01, 13);
    let stats = GraphStats::compute(&g);
    println!("collaboration network: {stats}");

    let query = 0usize;
    let eta = 0.30f64;
    println!("query vertex: {query}, threshold η = {eta}\n");

    let cfg = ProConfig {
        s2bdd: S2BddConfig {
            samples: 500,
            max_width: 1_000,
            seed: 8,
            ..Default::default()
        },
        ..Default::default()
    };

    let t0 = Instant::now();
    let mut accepted = Vec::new();
    let mut by_bounds = 0usize;
    let mut by_estimate = 0usize;
    // Scan a candidate pool (2-hop neighborhood keeps the demo quick).
    let mut pool = std::collections::BTreeSet::new();
    for &(w, _) in g.neighbors(query) {
        pool.insert(w);
        for &(x, _) in g.neighbors(w) {
            pool.insert(x);
        }
    }
    pool.remove(&query);
    // Keep the demo quick: cap the candidate pool.
    let pool: Vec<usize> = pool.into_iter().take(40).collect();

    for &cand in &pool {
        let r = st_reliability(&g, query, cand, cfg).expect("valid query");
        if r.lower_bound >= eta {
            by_bounds += 1;
            accepted.push((cand, r.estimate, "proven"));
        } else if r.upper_bound < eta {
            by_bounds += 1; // proven rejection
        } else if r.estimate >= eta {
            by_estimate += 1;
            accepted.push((cand, r.estimate, "sampled"));
        } else {
            by_estimate += 1;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    accepted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("estimates are comparable"));
    println!(
        "{} of {} candidates decided purely by the proven bounds; {} needed sampling",
        by_bounds,
        pool.len(),
        by_estimate
    );
    println!("\ntop reliable vertices (R^ >= {eta}):");
    println!("{:>8} {:>12} {:>10}", "vertex", "R^", "decision");
    for (v, est, how) in accepted.iter().take(12) {
        println!("{v:>8} {est:>12.4} {how:>10}");
    }
    println!(
        "\nsearch over {} candidates took {:.2}s",
        pool.len(),
        elapsed
    );
}
