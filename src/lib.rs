//! # network-reliability
//!
//! A Rust reproduction of *"Efficient Network Reliability Computation in
//! Uncertain Graphs"* (Sasaki, Fujiwara, Onizuka — EDBT 2019): k-terminal
//! reliability in uncertain graphs via an S2BDD (scalable & sampling binary
//! decision diagram) with bound-driven stratified sampling, plus the
//! 2-edge-connected-component extension technique, the Monte Carlo /
//! Horvitz–Thompson baselines, an exact solver, datasets, and the full
//! benchmark harness that regenerates every table and figure of the paper.
//! Beyond the paper, a pluggable [`solvers::Semantics`] trait answers five
//! reliability questions (k-terminal, two-terminal, all-terminal, d-hop,
//! expected reachable-set size) through the same decompose/solve/combine
//! pipeline and the same multi-query engine.
//!
//! Quick start:
//!
//! ```
//! use network_reliability::prelude::*;
//!
//! let g = UncertainGraph::new(4, [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.9), (3, 0, 0.7)]).unwrap();
//! let r = pro_reliability(&g, &[0, 2], ProConfig::default()).unwrap();
//! assert!(r.lower_bound <= r.estimate && r.estimate <= r.upper_bound);
//! ```
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | uncertain graphs, union-find, bridges, 2ECC, orderings |
//! | [`numeric`] | extended-exponent floats, compensated sums, statistics |
//! | [`datasets`] | embedded karate club + Table 2 synthetic stand-ins |
//! | [`bdd`] | brute force, frontier machine, materialized BDD baseline |
//! | [`s2bdd`] | the paper's S2BDD solver |
//! | [`preprocessing`] | prune / decompose / transform |
//! | [`solvers`] | `Sampling(MC/HT)`, `Pro`, exact, the `Semantics` trait + oracle |
//! | [`engine`] | batched multi-query engine: shared preprocessing, semantics-generic adaptive planner, plan cache, JSON service |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

// Compile and run every Rust snippet in the README as part of
// `cargo test --doc`, so the quickstarts can never drift from the API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use netrel_bdd as bdd;
pub use netrel_core as solvers;
pub use netrel_datasets as datasets;
pub use netrel_engine as engine;
pub use netrel_numeric as numeric;
pub use netrel_preprocess as preprocessing;
pub use netrel_s2bdd as s2bdd;
pub use netrel_ugraph as graph;

/// Everything a typical user needs.
pub mod prelude {
    pub use netrel_core::prelude::*;
    pub use netrel_datasets::{Dataset, ProbModel};
    pub use netrel_engine::{
        Engine, EngineConfig, PlanBudget, PlannedQuery, QueryAnswer, ReliabilityAnswer,
        ReliabilityQuery, Route,
    };
    pub use netrel_ugraph::{GraphStats, UncertainGraph};
}
